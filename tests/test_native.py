"""Native (generated-C) kernel tier: build cache, byte-exactness, fallback.

Everything in here must pass both with and without a C toolchain: tests
that exercise the compiled kernels skip themselves when
:func:`repro.gf.native.native_available` is False, and the fallback
tests simulate the compiler-less host explicitly.
"""

import numpy as np
import pytest

from repro.gf import (
    GF256,
    GF65536,
    GFError,
    CodingPlan,
    XorSchedule,
    kernel_bytes_info,
    kernel_selection_info,
    mat_data_product_reference,
    native_available,
    native_unavailable_reason,
    pool_budget_bytes,
    random_symbols,
    reset_kernel_selection,
    reset_native_backend,
)
from repro.gf import native as nat

# The native build cache and kernel-selection counters are process-global
# (and several tests flip REPRO_* env knobs); under pytest-xdist's
# --dist loadgroup this pins every such test onto one worker.
pytestmark = pytest.mark.xdist_group("kernel-global-state")

LARGE = 20_000  # comfortably past SMALL_PRODUCT_ELEMS, several cache blocks

needs_native = pytest.mark.skipif(
    not native_available(), reason=f"native tier unavailable: {native_unavailable_reason()}"
)


def _random(gf, shape, seed):
    return random_symbols(gf, shape, seed=seed)


def _all_tiers(gf, coeffs, payload):
    """Apply through every forced tier plus the scalar reference oracle."""
    results = {
        "reference": mat_data_product_reference(gf, coeffs, payload),
        "table": CodingPlan(gf, coeffs, kernel="table").apply(payload),
        "xor": CodingPlan(gf, coeffs, kernel="xor").apply(payload),
        "native": CodingPlan(gf, coeffs, kernel="native").apply(payload),
    }
    return results


class TestBuild:
    @needs_native
    def test_backend_is_memoized(self):
        assert nat.get_backend() is nat.get_backend()

    @needs_native
    def test_shared_object_cached_on_disk(self):
        backend = nat.get_backend()
        assert backend.so_path.exists()
        assert backend.so_path.parent == nat._cache_root() / nat.native_build_key()
        assert backend.simd_level >= 1

    def test_build_key_is_stable_and_content_addressed(self):
        key = nat.native_build_key()
        assert key == nat.native_build_key()
        src, cc = key.split("/")
        int(src, 16)  # hex digest prefixes
        int(cc, 16) if cc else None
        assert len(src) == 16

    @needs_native
    def test_rebuild_reuses_cached_artifact(self, monkeypatch):
        # A second resolve in the same cache dir must dlopen, not recompile:
        # with the compiler probe removed, the cached .so is still found.
        monkeypatch.setattr(nat, "_compiler", lambda: None)
        reset_native_backend()
        try:
            assert native_available()
        finally:
            monkeypatch.undo()
            reset_native_backend()

    def test_unavailable_reason_empty_when_available(self):
        if native_available():
            assert native_unavailable_reason() == ""
        else:
            assert native_unavailable_reason()


@needs_native
class TestByteExactness:
    """All four tiers and the scalar oracle agree bit for bit."""

    @pytest.mark.parametrize("k", [50, 100])
    def test_wide_stripe_gf256(self, k):
        gf = GF256
        coeffs = _random(gf, (4, k), seed=k) | 1  # dense: no zero coefficients
        payload = _random(gf, (k, LARGE), seed=k + 1)
        results = _all_tiers(gf, coeffs, payload)
        for label, got in results.items():
            assert np.array_equal(got, results["reference"]), label

    @pytest.mark.parametrize("k", [50, 100])
    def test_wide_stripe_gf65536(self, k):
        gf = GF65536
        coeffs = _random(gf, (4, k), seed=k) | 1
        payload = _random(gf, (k, LARGE // 4), seed=k + 1)
        results = _all_tiers(gf, coeffs, payload)
        for label, got in results.items():
            assert np.array_equal(got, results["reference"]), label

    @pytest.mark.parametrize("tail", [1, 7, 31, 63, 4095, 4097])
    def test_ragged_tails_gf256(self, tail):
        # Stripe widths that are not multiples of the SIMD width, the
        # cache block, or the 64-byte alignment unit.
        gf = GF256
        coeffs = _random(gf, (3, 50), seed=3) | 1
        payload = _random(gf, (50, 4096 + tail), seed=5)
        plan = CodingPlan(gf, coeffs, kernel="native")
        want = mat_data_product_reference(gf, coeffs, payload)
        assert np.array_equal(plan.apply(payload), want)

    def test_unaligned_views(self):
        # Non-contiguous rows take the copy/copy-back guard paths.
        gf = GF256
        coeffs = _random(gf, (3, 50), seed=11) | 1
        backing = _random(gf, (50, 2 * LARGE), seed=13)
        payload = backing[:, ::2]
        want = mat_data_product_reference(gf, np.asarray(coeffs), np.ascontiguousarray(payload))
        plan = CodingPlan(gf, coeffs, kernel="native")
        out_backing = np.zeros((3, 2 * LARGE), dtype=gf.dtype)
        out = out_backing[:, ::2]
        assert np.array_equal(plan.apply(payload, out=out), want)
        assert np.array_equal(out, want)

    def test_native_xor_schedule_gf256(self):
        # Parity-shaped plans route through the C XOR-schedule executor.
        gf = GF256
        coeffs = np.ones((2, 50), dtype=np.uint8)
        coeffs[1, ::2] = 0
        payload = _random(gf, (50, LARGE), seed=17)
        plan = CodingPlan(gf, coeffs)  # auto: schedule wins for parities
        assert plan.kernel == "native-xor"
        want = mat_data_product_reference(gf, coeffs, payload)
        assert np.array_equal(plan.apply(payload), want)

    @pytest.mark.parametrize("field,seed", [(GF256, 19), (GF65536, 23)])
    def test_xor_exec_ladder_matches_numpy(self, field, seed):
        # Drive the C executor directly on a schedule with doubling
        # ladders (small non-0/1 coefficients), bypassing the cost model.
        gf = field
        coeffs = (_random(gf, (3, 8), seed=seed) % 6).astype(gf.dtype) + 1
        schedule = XorSchedule.compile(gf, coeffs)
        assert schedule.stats["ladder_steps"] > 0
        payload = _random(gf, (8, 12_345), seed=seed + 1)
        cols = np.arange(8)
        rows = np.arange(3)
        want = np.zeros((3, 12_345), dtype=gf.dtype)
        schedule.execute(payload, cols, rows, want)
        got = np.zeros_like(want)
        schedule.execute_native(nat.get_backend(), payload, cols, rows, got)
        assert np.array_equal(got, want)

    def test_single_block_reconstruct(self):
        from repro.codes import ReedSolomonCode

        code = ReedSolomonCode(50, 4)
        data = _random(code.gf, (code.data_stripe_total, LARGE), seed=29)
        blocks = code.encode(data)
        target = 7
        rp = code.repair_plan(target)
        plan = code.compile_reconstruct(target, rp.helpers)
        forced = CodingPlan(code.gf, plan.coeffs, kernel="native")
        avail = {b: blocks[b] for b in range(code.n) if b != target}
        rebuilt, _ = code.reconstruct(target, avail, rp)
        assert np.array_equal(rebuilt, blocks[target])
        # The reconstruct matrix itself is byte-exact through the native tier.
        helpers_payload = np.concatenate([blocks[h] for h in rp.helpers], axis=0)
        want = mat_data_product_reference(code.gf, plan.coeffs, helpers_payload)
        assert np.array_equal(forced.apply(helpers_payload), want)

    def test_apply_batch_through_native(self):
        gf = GF256
        coeffs = _random(gf, (4, 50), seed=31) | 1
        plan = CodingPlan(gf, coeffs, kernel="native")
        segs = [_random(gf, (50, w), seed=33 + w) for w in (8_000, 5_000, 12_000)]
        outs = plan.apply_batch(segs)
        for seg, got in zip(segs, outs):
            assert np.array_equal(got, mat_data_product_reference(gf, coeffs, seg))


class TestPoolKnob:
    def test_default_budget(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_KB", raising=False)
        assert pool_budget_bytes() == 3 << 19

    def test_valid_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_KB", "256")
        assert pool_budget_bytes() == 256 << 10

    @pytest.mark.parametrize("bad", ["sixty-four", "1.5", ""])
    def test_non_integer_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_POOL_KB", bad)
        if bad.strip():
            with pytest.raises(GFError):
                pool_budget_bytes()
        else:
            assert pool_budget_bytes() == 3 << 19  # empty means default

    @pytest.mark.parametrize("bad", ["63", "0", "-1", str((1 << 20) + 1)])
    def test_out_of_range_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_POOL_KB", bad)
        with pytest.raises(GFError):
            pool_budget_bytes()

    @needs_native
    def test_tiny_pool_still_byte_exact(self, monkeypatch):
        # A 64 KiB budget forces many cache blocks per stripe on both
        # native paths; results must not depend on the block geometry.
        gf = GF256
        dense = _random(gf, (4, 50), seed=37) | 1
        parity = np.ones((2, 50), dtype=np.uint8)
        payload = _random(gf, (50, LARGE), seed=41)
        monkeypatch.setenv("REPRO_POOL_KB", "64")
        for coeffs in (dense, parity):
            got = CodingPlan(gf, coeffs, kernel="native").apply(payload)
            want = mat_data_product_reference(gf, coeffs, payload)
            assert np.array_equal(got, want)


class TestFallback:
    def test_disable_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        reset_native_backend()
        try:
            assert not native_available()
            assert "REPRO_NATIVE_DISABLE" in native_unavailable_reason()
        finally:
            monkeypatch.undo()
            reset_native_backend()

    def test_no_compiler_no_cache_falls_back(self, monkeypatch, tmp_path):
        # Simulate a host with no toolchain and a cold artifact cache: the
        # tier reports itself unavailable and forced-native plans run the
        # numpy tiers byte-exactly, counting the fallback.
        monkeypatch.setattr(nat, "_compiler", lambda: None)
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "empty"))
        # An ambient disable knob would mask the no-compiler reason string.
        monkeypatch.delenv("REPRO_NATIVE_DISABLE", raising=False)
        reset_native_backend()
        try:
            assert not native_available()
            assert "no C compiler" in native_unavailable_reason()
            reset_kernel_selection()
            gf = GF256
            coeffs = _random(gf, (4, 50), seed=43) | 1
            payload = _random(gf, (50, LARGE), seed=47)
            plan = CodingPlan(gf, coeffs, kernel="native")
            got = plan.apply(payload)
            assert plan.kernel == "packed-full"
            counts = kernel_selection_info()
            assert counts["native_fallbacks"] == 1
            assert counts["packed-full"] == 1
            assert counts["native"] == 0
            assert np.array_equal(got, mat_data_product_reference(gf, coeffs, payload))
        finally:
            monkeypatch.undo()
            reset_native_backend()

    def test_forced_numpy_tiers_never_bind_backend(self):
        # kernel="table" / "xor" stay pure numpy even on a toolchain host,
        # so tier-vs-tier benchmarks measure what they claim to.
        gf = GF256
        coeffs = _random(gf, (4, 50), seed=53) | 1
        payload = _random(gf, (50, LARGE), seed=59)
        for choice, label in (("table", "packed-full"), ("xor", "xor")):
            plan = CodingPlan(gf, coeffs, kernel=choice)
            plan.apply(payload)
            assert plan.kernel == label
            assert plan._native_backend is None


@needs_native
class TestCounters:
    def test_selection_and_bytes_accounting(self):
        reset_kernel_selection()
        gf = GF256
        dense = CodingPlan(gf, _random(gf, (4, 50), seed=61) | 1, kernel="native")
        parity = CodingPlan(gf, np.ones((2, 50), dtype=np.uint8))
        payload = _random(gf, (50, LARGE), seed=67)
        dense.apply(payload)
        dense.apply(payload)  # selection counted once, bytes per apply
        parity.apply(payload)
        counts = kernel_selection_info()
        assert counts["native"] == 1
        assert counts["native-xor"] == 1
        assert counts["native_fallbacks"] == 0
        bytes_info = kernel_bytes_info()
        per_apply = payload.nbytes + 4 * LARGE
        assert bytes_info["native"] == 2 * per_apply
        assert bytes_info["native-xor"] == payload.nbytes + 2 * LARGE
        assert bytes_info["xor"] == 0

"""Coroutine scheduling on the sim engine (repro.sim.aio).

The serving gateway's concurrency primitives: futures, tasks, sleep,
gather, and the hedging race.  Everything here runs on simulated time —
a full test run advances zero wall-clock seconds of "sleep".
"""

import pytest

from repro.sim.aio import SimFuture, SimLoop
from repro.sim.engine import SimulationError


@pytest.fixture
def loop():
    return SimLoop()


class TestFuture:
    def test_result_roundtrip(self, loop):
        fut = loop.future("x")
        assert not fut.done()
        fut.set_result(41)
        assert fut.done()
        assert fut.result() == 41

    def test_exception_roundtrip(self, loop):
        fut = loop.future("x")
        fut.set_exception(ValueError("boom"))
        assert fut.done()
        assert isinstance(fut.exception(), ValueError)
        with pytest.raises(ValueError):
            fut.result()

    def test_result_before_done_raises(self, loop):
        with pytest.raises(SimulationError):
            loop.future("x").result()

    def test_double_resolve_rejected(self, loop):
        fut = loop.future("x")
        fut.set_result(1)
        with pytest.raises(SimulationError):
            fut.set_result(2)
        with pytest.raises(SimulationError):
            fut.set_exception(ValueError())

    def test_done_callback_after_resolution_fires_immediately(self, loop):
        fut = loop.future("x")
        fut.set_result(7)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == [7]


class TestTasks:
    def test_task_returns_value(self, loop):
        async def work():
            await loop.sleep(1.5)
            return "done"

        task = loop.create_task(work())
        assert loop.run_until_complete(task) == "done"
        assert loop.now == pytest.approx(1.5)

    def test_tasks_interleave_on_sim_time(self, loop):
        order = []

        async def worker(name, delay):
            await loop.sleep(delay)
            order.append((name, loop.now))

        loop.create_task(worker("slow", 2.0))
        loop.create_task(worker("fast", 1.0))
        loop.run()
        assert order == [("fast", 1.0), ("slow", 2.0)]

    def test_task_exception_captured_not_raised_at_spawn(self, loop):
        async def bad():
            await loop.sleep(0.1)
            raise RuntimeError("late failure")

        task = loop.create_task(bad())
        loop.run()
        assert isinstance(task.exception(), RuntimeError)
        with pytest.raises(RuntimeError):
            task.result()

    def test_awaiting_a_task_propagates_its_result(self, loop):
        async def inner():
            await loop.sleep(1.0)
            return 10

        async def outer():
            return await loop.create_task(inner()) + 1

        assert loop.run_until_complete(loop.create_task(outer())) == 11

    def test_awaiting_non_future_is_a_clear_error(self, loop):
        async def confused():
            import asyncio

            await asyncio.sleep(0)  # wrong loop flavor

        task = loop.create_task(confused())
        loop.run()
        assert isinstance(task.exception(), SimulationError)
        assert "only SimFuture" in str(task.exception())

    def test_deadlocked_task_detected(self, loop):
        async def forever():
            await loop.future("never-resolved")

        task = loop.create_task(forever())
        with pytest.raises(SimulationError, match="still pending"):
            loop.run_until_complete(task)

    def test_deterministic_fifo_at_same_instant(self):
        # Two identical loops must produce identical interleavings.
        def trace():
            loop = SimLoop()
            order = []

            async def w(i):
                await loop.sleep(0.0)
                order.append(i)

            for i in range(8):
                loop.create_task(w(i))
            loop.run()
            return order

        assert trace() == trace() == list(range(8))


class TestGather:
    def test_results_in_argument_order(self, loop):
        async def delayed(value, delay):
            await loop.sleep(delay)
            return value

        async def main():
            return await loop.gather(
                loop.create_task(delayed("a", 3.0)),
                loop.create_task(delayed("b", 1.0)),
                loop.create_task(delayed("c", 2.0)),
            )

        assert loop.run_until_complete(loop.create_task(main())) == ["a", "b", "c"]
        assert loop.now == pytest.approx(3.0)

    def test_empty_gather_resolves_immediately(self, loop):
        async def main():
            return await loop.gather()

        assert loop.run_until_complete(loop.create_task(main())) == []

    def test_first_failure_fails_the_gather(self, loop):
        async def ok():
            await loop.sleep(5.0)
            return 1

        async def bad():
            await loop.sleep(1.0)
            raise ValueError("early")

        async def main():
            await loop.gather(loop.create_task(ok()), loop.create_task(bad()))

        task = loop.create_task(main())
        loop.run()
        assert isinstance(task.exception(), ValueError)


class TestFirstSuccess:
    def test_winner_index_and_result(self, loop):
        async def attempt(value, delay):
            await loop.sleep(delay)
            return value

        async def main():
            return await loop.first_success(
                loop.create_task(attempt("primary", 2.0)),
                loop.create_task(attempt("hedge", 0.5)),
            )

        assert loop.run_until_complete(loop.create_task(main())) == (1, "hedge")

    def test_failed_attempt_does_not_win(self, loop):
        async def fails_fast():
            await loop.sleep(0.1)
            raise OSError("dead disk")

        async def succeeds_late():
            await loop.sleep(2.0)
            return "late"

        async def main():
            return await loop.first_success(
                loop.create_task(fails_fast()), loop.create_task(succeeds_late())
            )

        assert loop.run_until_complete(loop.create_task(main())) == (1, "late")

    def test_all_failures_fail_the_race(self, loop):
        async def fails(delay):
            await loop.sleep(delay)
            raise OSError("dead")

        async def main():
            await loop.first_success(
                loop.create_task(fails(0.1)), loop.create_task(fails(0.2))
            )

        task = loop.create_task(main())
        loop.run()
        assert isinstance(task.exception(), OSError)

    def test_empty_race_rejected(self, loop):
        with pytest.raises(SimulationError):
            loop.first_success()

    def test_loser_runs_to_completion(self, loop):
        # No cancellation: the losing attempt's side effects still land,
        # and its completion is observable via add_done_callback — the
        # contract hedged reads use to count discarded losers.
        finished = []

        async def attempt(name, delay):
            await loop.sleep(delay)
            finished.append((name, loop.now))
            return name

        async def main():
            fast = loop.create_task(attempt("fast", 1.0))
            slow = loop.create_task(attempt("slow", 4.0))
            winner = await loop.first_success(fast, slow)
            slow.add_done_callback(lambda f: finished.append(("discarded", loop.now)))
            return winner

        assert loop.run_until_complete(loop.create_task(main())) == (0, "fast")
        assert ("slow", 4.0) in finished
        assert ("discarded", 4.0) in finished

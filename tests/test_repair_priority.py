"""Tests for risk-prioritized repair ordering."""

from repro.cluster import Cluster
from repro.core import GalloperCode
from repro.storage import DistributedFileSystem, RepairManager
from tests.conftest import payload_bytes


class TestRepairTriage:
    def test_most_damaged_file_repaired_first(self):
        cluster = Cluster.homogeneous(20)
        dfs = DistributedFileSystem(cluster)
        p1 = payload_bytes(14_000, seed=80)
        p2 = payload_bytes(14_000, seed=81)
        from repro.cluster import RoundRobinPlacement

        ef_light = dfs.write_file(
            "a-light", p1, code=GalloperCode(4, 2, 1), placement=RoundRobinPlacement()
        )
        ef_heavy = dfs.write_file(
            "b-heavy", p2, code=GalloperCode(4, 2, 1), placement=RoundRobinPlacement(offset=7)
        )
        # One failure for the light file, two for the heavy one.
        victims = [ef_light.server_of(0), ef_heavy.server_of(0), ef_heavy.server_of(3)]
        for v in victims:
            cluster.fail(v)
        reports = RepairManager(dfs).repair_all()
        assert [r.file for r in reports] == ["b-heavy", "b-heavy", "a-light"]
        # Everything healed.
        for v in victims:
            cluster.recover(v)
            dfs.store.drop_server(v)
        assert dfs.read_file("a-light") == p1
        assert dfs.read_file("b-heavy") == p2

    def test_alphabetical_within_equal_risk(self):
        cluster = Cluster.homogeneous(20)
        dfs = DistributedFileSystem(cluster)
        from repro.cluster import RoundRobinPlacement

        efs = {}
        for i, name in enumerate(["zeta", "alpha"]):
            efs[name] = dfs.write_file(
                name,
                payload_bytes(7_000, seed=82 + i),
                code=GalloperCode(4, 2, 1),
                placement=RoundRobinPlacement(offset=7 * i),
            )
        cluster.fail(efs["zeta"].server_of(1))
        cluster.fail(efs["alpha"].server_of(1))
        reports = RepairManager(dfs).repair_all()
        assert [r.file for r in reports] == ["alpha", "zeta"]

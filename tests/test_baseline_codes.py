"""Tests for the Carousel, replication and rotated-RAID baselines."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes import (
    CarouselCode,
    DecodingError,
    PyramidCode,
    ReplicationCode,
    RotatedPyramidCode,
)
from repro.codes.base import ParameterError
from repro.gf import random_symbols


class TestCarousel:
    def test_geometry(self):
        code = CarouselCode(4, 2)
        assert code.n == 6
        assert code.N == 3  # reduced fraction of 4/6
        assert [i.data_stripes for i in code.block_infos] == [2] * 6

    def test_roundtrip(self):
        code = CarouselCode(4, 2)
        data = random_symbols(code.gf, (code.data_stripe_total, 7), seed=1)
        blocks = code.encode(data)
        assert code.verify_systematic()
        for ids in combinations(range(6), 4):
            assert np.array_equal(code.decode({b: blocks[b] for b in ids}), data)

    def test_full_parallelism(self):
        assert CarouselCode(4, 2).parallelism() == 6
        assert CarouselCode(6, 3).parallelism() == 9

    def test_repair_reads_k_full_blocks(self):
        """The drawback Galloper fixes: Carousel repairs like Reed-Solomon."""
        code = CarouselCode(4, 2)
        plan = code.repair_plan(2)
        assert plan.blocks_read == 4
        assert all(f == 1.0 for f in plan.read_fractions.values())


class TestReplication:
    def test_copy_layout(self):
        code = ReplicationCode(4, 3)
        assert code.n == 12
        assert code.copies_of(1) == [1, 5, 9]

    def test_roundtrip_and_repair(self):
        code = ReplicationCode(3, 2)
        data = random_symbols(code.gf, (3, 9), seed=2)
        blocks = code.encode(data)
        for c in range(2):
            for j in range(3):
                assert np.array_equal(blocks[c * 3 + j], data[j][None, :])
        rebuilt, plan = code.reconstruct(4, {b: blocks[b] for b in range(6) if b != 4})
        assert np.array_equal(rebuilt, blocks[4])
        assert plan.blocks_read == 1

    def test_all_copies_lost(self):
        code = ReplicationCode(2, 2)
        with pytest.raises(DecodingError):
            code.repair_plan(0, failed={2})

    def test_overhead_and_tolerance(self):
        code = ReplicationCode(4, 3)
        assert code.storage_overhead() == 3.0
        assert code.failure_tolerance() == 2

    def test_every_block_is_parallel(self):
        assert ReplicationCode(4, 3).parallelism() == 12

    def test_factor_must_be_positive(self):
        with pytest.raises(ParameterError):
            ReplicationCode(4, 0)


class TestRotatedPyramid:
    @pytest.fixture
    def code(self):
        return RotatedPyramidCode(4, 2, 1)

    def test_geometry(self, code):
        assert code.n == 7
        assert code.N == 7
        # Every server holds exactly k data stripes.
        assert all(i.data_stripes == 4 for i in code.block_infos)

    def test_scattered_file_extents(self, code):
        assert any(not i.contiguous for i in code.block_infos)
        seen = sorted(fs for i in code.block_infos for fs in i.file_stripes)
        assert seen == list(range(code.data_stripe_total))

    def test_systematic(self, code):
        assert code.verify_systematic()

    def test_tolerance_matches_pyramid(self, code):
        data = random_symbols(code.gf, (code.data_stripe_total, 3), seed=3)
        blocks = code.encode(data)
        for lost in combinations(range(7), 2):
            ids = [b for b in range(7) if b not in lost]
            assert np.array_equal(code.decode({b: blocks[b] for b in ids}), data), lost

    def test_repair_wakes_most_servers(self, code):
        """Sec. III-D: rotation keeps byte-I/O low but touches many servers."""
        pyramid = PyramidCode(4, 2, 1)
        for target in range(7):
            rot_plan = code.repair_plan(target)
            pyr_plan = pyramid.repair_plan(target)
            assert rot_plan.blocks_read > pyr_plan.blocks_read
            # Byte volume stays comparable (fractional reads).
            assert sum(rot_plan.read_fractions.values()) <= 4.01

    def test_repair_reconstructs_correctly(self, code):
        data = random_symbols(code.gf, (code.data_stripe_total, 3), seed=4)
        blocks = code.encode(data)
        for target in range(7):
            avail = {b: blocks[b] for b in range(7) if b != target}
            rebuilt, plan = code.reconstruct(target, avail)
            assert np.array_equal(rebuilt, blocks[target])

    def test_fallback_when_helper_failed(self, code):
        plan = code.repair_plan(0, failed={1})
        assert 1 not in plan.helpers

    def test_data_extent_raises_for_scattered(self, code):
        from repro.codes.base import CodeError

        scattered = [i.index for i in code.block_infos if not i.contiguous]
        with pytest.raises(CodeError):
            code.data_extent(scattered[0])

"""Tests for Pyramid codes."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes import DecodingError, PyramidCode
from repro.codes.pyramid import pyramid_generator
from repro.codes.structure import LRCStructure
from repro.gf import GF256, random_symbols, rows_in_rowspace


class TestGenerator:
    def test_local_parities_are_group_xor(self, gf):
        st = LRCStructure(4, 2, 1)
        g = pyramid_generator(gf, st)
        assert np.array_equal(g[2], np.array([1, 1, 0, 0], dtype=np.uint8))
        assert np.array_equal(g[5], np.array([0, 0, 1, 1], dtype=np.uint8))

    def test_data_rows_identity(self, gf):
        st = LRCStructure(4, 2, 1)
        g = pyramid_generator(gf, st)
        for pos, b in enumerate(st.data_blocks()):
            expect = np.zeros(4, dtype=np.uint8)
            expect[pos] = 1
            assert np.array_equal(g[b], expect)

    def test_local_parities_sum_to_split_row(self, gf):
        """The locals partition one parity of the source (k, g+1) RS code."""
        st = LRCStructure(6, 3, 2)
        g = pyramid_generator(gf, st)
        total = np.zeros(6, dtype=np.uint8)
        for lp in st.local_parity_blocks():
            total ^= g[lp]
        assert np.array_equal(total, np.ones(6, dtype=np.uint8))

    def test_l_zero_is_reed_solomon(self, gf):
        from repro.codes.rs import rs_generator

        st = LRCStructure(4, 0, 2)
        assert np.array_equal(pyramid_generator(gf, st), rs_generator(gf, 4, 2))


@pytest.mark.parametrize("k,l,g", [(4, 2, 1), (6, 2, 2), (6, 3, 1), (4, 4, 1)])
class TestFailureTolerance:
    def test_any_g_plus_1_failures_decodable(self, k, l, g):
        code = PyramidCode(k, l, g)
        data = random_symbols(code.gf, (k, 10), seed=k * 100 + l)
        blocks = code.encode(data)
        tol = code.structure.failure_tolerance()
        for lost in combinations(range(code.n), tol):
            ids = [b for b in range(code.n) if b not in lost]
            got = code.decode({b: blocks[b] for b in ids})
            assert np.array_equal(got, data), lost

    def test_locality_rowspace(self, k, l, g):
        code = PyramidCode(k, l, g)
        for b in range(code.n):
            if code.structure.role_of(b) == "global_parity":
                continue
            group = code.structure.group_of(b)
            helpers = [m for m in code.structure.group_members(group) if m != b]
            assert rows_in_rowspace(
                code.gf, code.generator[code.block_rows(b)], code.rows_for_blocks(helpers)
            )


class TestRepairPlans:
    @pytest.fixture
    def code(self):
        return PyramidCode(4, 2, 1)

    def test_local_repair_for_grouped_blocks(self, code):
        for b in range(6):
            plan = code.repair_plan(b)
            assert plan.blocks_read == 2
            group = code.structure.group_of(b)
            assert set(plan.helpers) == set(code.structure.group_members(group)) - {b}

    def test_global_parity_needs_k(self, code):
        plan = code.repair_plan(6)
        assert plan.blocks_read == 4

    def test_degraded_group_falls_back(self, code):
        # Block 1 is also lost, so block 0 cannot use its group.
        plan = code.repair_plan(0, failed={1})
        assert 1 not in plan.helpers
        assert plan.blocks_read >= 4

    def test_repair_executes(self, code):
        data = random_symbols(code.gf, (4, 21), seed=9)
        blocks = code.encode(data)
        for target in range(7):
            avail = {b: blocks[b] for b in range(7) if b != target}
            rebuilt, plan = code.reconstruct(target, avail)
            assert np.array_equal(rebuilt, blocks[target])

    def test_unrepairable_raises(self, code):
        with pytest.raises(DecodingError):
            code.repair_plan(0, failed={1, 2, 3, 4})


class TestKnownPatterns:
    def test_paper_counterexample_not_decodable(self):
        """Losing A, B and the global parity defeats a (4,2,1) Pyramid code
        (paper Sec. III-B)."""
        code = PyramidCode(4, 2, 1)
        assert not code.can_decode([2, 3, 4, 5])

    def test_more_than_g_plus_1_sometimes_decodable(self):
        """Some 3-failure patterns are still decodable (paper Sec. III-B)."""
        code = PyramidCode(4, 2, 1)
        # Lose both local parities and the global parity: data blocks remain.
        assert code.can_decode([0, 1, 3, 4])

    def test_parallelism(self):
        assert PyramidCode(4, 2, 1).parallelism() == 4

    def test_storage_overhead(self):
        assert PyramidCode(4, 2, 1).storage_overhead() == pytest.approx(7 / 4)

    def test_roles_match_structure(self):
        code = PyramidCode(4, 2, 1)
        for info in code.block_infos:
            assert info.role == code.structure.role_of(info.index)
            assert info.group == code.structure.group_of(info.index)

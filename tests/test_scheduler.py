"""Tests for the locality-aware task scheduler."""

import pytest

from repro.cluster import Cluster
from repro.mapreduce import LocalityScheduler, ScheduledTask
from repro.sim import Simulation


def fixed_duration(seconds, remote_penalty=0.0):
    def fn(server, local):
        return seconds + (0.0 if local else remote_penalty)

    return fn


def make_task(tid, server, nbytes=100, duration=10.0, remote_penalty=0.0):
    return ScheduledTask(
        task_id=tid,
        preferred_server=server,
        input_bytes=nbytes,
        duration_fn=fixed_duration(duration, remote_penalty),
    )


class TestLocality:
    def test_tasks_run_on_preferred_servers(self):
        cluster = Cluster.homogeneous(4, map_slots=2)
        sched = LocalityScheduler(Simulation(), cluster)
        tasks = [make_task(f"t{i}", i) for i in range(4)]
        assignments = sched.run_phase(tasks)
        for a in assignments:
            assert a.server == a.task.preferred_server
            assert a.local

    def test_slots_limit_concurrency(self):
        cluster = Cluster.homogeneous(1, map_slots=2)
        sim = Simulation()
        sched = LocalityScheduler(sim, cluster)
        tasks = [make_task(f"t{i}", 0, duration=10.0) for i in range(4)]
        assignments = sched.run_phase(tasks)
        finishes = sorted(a.finish for a in assignments)
        assert finishes == [10.0, 10.0, 20.0, 20.0]

    def test_larger_tasks_scheduled_first(self):
        cluster = Cluster.homogeneous(1, map_slots=1)
        sched = LocalityScheduler(Simulation(), cluster)
        tasks = [
            make_task("small", 0, nbytes=10),
            make_task("big", 0, nbytes=1000),
        ]
        assignments = sched.run_phase(tasks)
        assert assignments[0].task.task_id == "big"


class TestStealing:
    def test_idle_server_steals_from_saturated(self):
        cluster = Cluster.homogeneous(2, map_slots=1)
        sched = LocalityScheduler(Simulation(), cluster)
        # Three tasks all prefer server 0; server 1 is idle.
        tasks = [make_task(f"t{i}", 0, duration=10.0) for i in range(3)]
        assignments = sched.run_phase(tasks)
        servers = {a.server for a in assignments}
        assert servers == {0, 1}
        stolen = [a for a in assignments if a.server == 1]
        assert all(not a.local for a in stolen)

    def test_no_stealing_when_disabled(self):
        cluster = Cluster.homogeneous(2, map_slots=1)
        sched = LocalityScheduler(Simulation(), cluster, allow_remote=False)
        tasks = [make_task(f"t{i}", 0, duration=5.0) for i in range(3)]
        assignments = sched.run_phase(tasks)
        assert {a.server for a in assignments} == {0}
        assert max(a.finish for a in assignments) == 15.0

    def test_dead_server_tasks_move(self):
        cluster = Cluster.homogeneous(3, map_slots=1)
        cluster.fail(0)
        sched = LocalityScheduler(Simulation(), cluster)
        tasks = [make_task("t0", 0, duration=5.0)]
        assignments = sched.run_phase(tasks)
        assert assignments[0].server != 0
        assert not assignments[0].local

    def test_stranded_without_remote_raises(self):
        cluster = Cluster.homogeneous(2, map_slots=1)
        cluster.fail(0)
        sched = LocalityScheduler(Simulation(), cluster, allow_remote=False)
        with pytest.raises(RuntimeError):
            sched.run_phase([make_task("t0", 0)])

    def test_local_tasks_win_over_steals(self):
        """A server with local work pending must not steal remote work."""
        cluster = Cluster.homogeneous(2, map_slots=1)
        sched = LocalityScheduler(Simulation(), cluster)
        tasks = [
            make_task("local-1", 1, nbytes=50),
            make_task("remote-candidate", 0, nbytes=500),
        ]
        assignments = sched.run_phase(tasks)
        by_id = {a.task.task_id: a for a in assignments}
        assert by_id["local-1"].server == 1
        assert by_id["remote-candidate"].server == 0


class TestDelayScheduling:
    def test_delay_prevents_early_stealing(self):
        """With a long locality delay, an idle server waits and the busy
        server ends up running all its local tasks itself."""
        cluster = Cluster.homogeneous(2, map_slots=1)
        sched = LocalityScheduler(Simulation(), cluster, locality_delay=100.0)
        tasks = [make_task(f"t{i}", 0, duration=5.0) for i in range(3)]
        assignments = sched.run_phase(tasks)
        assert {a.server for a in assignments} == {0}

    def test_short_delay_allows_stealing_later(self):
        cluster = Cluster.homogeneous(2, map_slots=1)
        sim = Simulation()
        sched = LocalityScheduler(sim, cluster, locality_delay=2.0)
        tasks = [make_task(f"t{i}", 0, duration=10.0) for i in range(3)]
        assignments = sched.run_phase(tasks)
        stolen = [a for a in assignments if a.server == 1]
        assert len(stolen) == 1
        # The steal happens at the delay boundary, not at t=0.
        assert stolen[0].start == pytest.approx(2.0)

    def test_dead_owner_exempt_from_delay(self):
        """Delay only helps tasks whose home server might free up; a dead
        owner's tasks move immediately."""
        cluster = Cluster.homogeneous(2, map_slots=1)
        cluster.fail(0)
        sched = LocalityScheduler(Simulation(), cluster, locality_delay=50.0)
        assignments = sched.run_phase([make_task("t0", 0, duration=5.0)])
        assert assignments[0].server == 1
        assert assignments[0].start == 0.0

    def test_zero_delay_matches_old_behaviour(self):
        cluster = Cluster.homogeneous(2, map_slots=1)
        sched = LocalityScheduler(Simulation(), cluster, locality_delay=0.0)
        tasks = [make_task(f"t{i}", 0, duration=10.0) for i in range(3)]
        assignments = sched.run_phase(tasks)
        assert {a.server for a in assignments} == {0, 1}

    def test_delay_tradeoff_visible_in_makespan(self):
        """Delay scheduling trades makespan for locality: with stealing
        the phase is shorter, but the stolen task reads remotely."""

        def run(delay):
            cluster = Cluster.homogeneous(2, map_slots=1)
            sched = LocalityScheduler(Simulation(), cluster, locality_delay=delay)
            tasks = [make_task(f"t{i}", 0, duration=10.0) for i in range(2)]
            return max(a.finish for a in sched.run_phase(tasks))

        assert run(0.0) == 10.0  # stolen immediately, runs in parallel
        assert run(1000.0) == 20.0  # fully local, serialized


class TestSpeculativeExecution:
    def _hetero(self):
        # Server 0 is slow; server 1 fast and idle.
        return Cluster.heterogeneous([0.25, 1.0])

    @staticmethod
    def _speed_task(tid, server, nbytes=100):
        def duration(sid, local):
            cluster_speeds = {0: 0.25, 1: 1.0}
            return 10.0 / cluster_speeds[sid]

        return ScheduledTask(tid, server, nbytes, duration)

    def test_backup_launched_for_straggler(self):
        cluster = self._hetero()
        sched = LocalityScheduler(Simulation(), cluster, speculative=True)
        assignments = sched.run_phase([self._speed_task("t0", 0)])
        assert len(assignments) == 2
        assert any(a.speculative for a in assignments)
        winner = sched.effective_assignments()["t0"]
        assert winner.server == 1  # the fast backup wins
        assert winner.finish == pytest.approx(10.0)
        assert sched.speculative_copies == 1

    def test_no_backup_when_disabled(self):
        cluster = self._hetero()
        sched = LocalityScheduler(Simulation(), cluster, speculative=False)
        assignments = sched.run_phase([self._speed_task("t0", 0)])
        assert len(assignments) == 1
        assert sched.speculative_copies == 0

    def test_at_most_one_backup(self):
        cluster = Cluster.heterogeneous([0.25, 1.0, 1.0], map_slots=2)
        sched = LocalityScheduler(Simulation(), cluster, speculative=True)
        sched.run_phase([self._speed_task("t0", 0)])
        assert sched.speculative_copies <= 1

    def test_no_backup_without_expected_gain(self):
        """Equal-speed servers: a backup could never finish earlier."""
        cluster = Cluster.homogeneous(2, map_slots=1)
        sched = LocalityScheduler(Simulation(), cluster, speculative=True)
        assignments = sched.run_phase([make_task("t0", 0, duration=10.0)])
        assert len(assignments) == 1

    def test_pending_work_preferred_over_speculation(self):
        cluster = self._hetero()
        sched = LocalityScheduler(Simulation(), cluster, speculative=True)
        tasks = [self._speed_task("slow", 0, nbytes=500), self._speed_task("own", 1, nbytes=100)]
        assignments = sched.run_phase(tasks)
        first_on_fast = min((a for a in assignments if a.server == 1), key=lambda a: a.start)
        assert first_on_fast.task.task_id == "own"
        assert not first_on_fast.speculative

    def test_runtime_reports_copies(self):
        from repro.core import GalloperCode
        from repro.mapreduce import GalloperInputFormat, MapReduceRuntime
        from repro.mapreduce.workloads import wordcount_job
        from repro.storage import DistributedFileSystem

        cluster = Cluster.heterogeneous([1, 1, 1, 1, 0.4, 0.4, 0.4])
        dfs = DistributedFileSystem(cluster)
        dfs.write_virtual_file("v", 400 << 20, code=GalloperCode(4, 2, 1))
        plain = MapReduceRuntime(dfs, execute=False).run(wordcount_job("v"), GalloperInputFormat())
        spec = MapReduceRuntime(dfs, execute=False, speculative=True).run(
            wordcount_job("v"), GalloperInputFormat()
        )
        assert spec.speculative_copies > 0
        assert spec.map_phase_time < plain.map_phase_time
        # One TaskRecord per task, even with backups.
        assert spec.num_map_tasks == plain.num_map_tasks


class TestRetryBookkeeping:
    def test_retry_marker_pruned_when_fired(self):
        """The locality-delay retry marker must not leak past its firing:
        a server whose retry fired can re-arm one in a later wait window."""
        cluster = Cluster.homogeneous(2, map_slots=1)
        sim = Simulation()
        sched = LocalityScheduler(sim, cluster, locality_delay=2.0)
        tasks = [make_task(f"t{i}", 0, duration=10.0) for i in range(3)]
        sched.run_phase(tasks)
        assert sched._retry_scheduled == set()

    def test_retry_state_cleared_between_phases(self):
        cluster = Cluster.homogeneous(2, map_slots=1)
        sim = Simulation()
        sched = LocalityScheduler(sim, cluster, locality_delay=5.0)
        sched.run_phase([make_task(f"a{i}", 0, duration=2.0) for i in range(3)])
        first = dict(sched.task_retries)
        sched.run_phase([make_task(f"b{i}", 0, duration=2.0) for i in range(3)])
        assert sched.task_retries == {}
        assert first == {}
        assert sched.failed_tasks == []


class TestServerFailure:
    def test_inflight_tasks_requeued(self):
        cluster = Cluster.homogeneous(2, map_slots=1)
        sim = Simulation()
        sched = LocalityScheduler(sim, cluster)
        tasks = [make_task("t0", 0, duration=10.0), make_task("t1", 1, duration=10.0)]
        sched.reset()
        sched._pending = sorted(tasks, key=lambda t: -t.input_bytes)
        sched._phase_start = sim.now
        for sid in sched._dispatch_order():
            sched._dispatch(sid)
        sim.run(until=3.0)
        cluster.fail(0)
        requeued = sched.handle_server_failure(0)
        assert requeued == ["t0"]
        sim.run()
        winners = sched.effective_assignments()
        assert winners["t0"].server == 1
        assert not winners["t0"].failed
        # The crashed attempt stays in the log, marked failed.
        crashed = [a for a in sched.assignments if a.server == 0]
        assert crashed and all(a.failed for a in crashed)

    def test_retry_cap_fails_task_terminally(self):
        cluster = Cluster.homogeneous(1, map_slots=1)
        sim = Simulation()
        sched = LocalityScheduler(sim, cluster, max_task_retries=0)
        sched.reset()
        sched._pending = [make_task("t0", 0, duration=10.0)]
        for sid in sched._dispatch_order():
            sched._dispatch(sid)
        sim.run(until=1.0)
        cluster.fail(0)
        assert sched.handle_server_failure(0) == []
        assert [t.task_id for t in sched.failed_tasks] == ["t0"]

    def test_speculative_twin_survives_crash(self):
        """When a backup attempt is running elsewhere, the task is not
        re-queued after its primary's server dies."""
        cluster = Cluster.heterogeneous([0.25, 1.0])
        sim = Simulation()
        sched = LocalityScheduler(sim, cluster, speculative=True)

        def duration(sid, local):
            return 10.0 / {0: 0.25, 1: 1.0}[sid]

        sched.reset()
        sched._pending = [ScheduledTask("t0", 0, 100, duration)]
        for sid in sched._dispatch_order():
            sched._dispatch(sid)
        sim.run(until=1.0)
        assert len(sched.assignments) == 2  # primary + backup
        cluster.fail(0)
        assert sched.handle_server_failure(0) == []
        sim.run()
        assert sched.effective_assignments()["t0"].server == 1
        assert sched.failed_tasks == []

    def test_completion_on_withdrawn_server_is_ignored(self):
        """The already-scheduled completion event of a crashed server must
        not resurrect its slot."""
        cluster = Cluster.homogeneous(2, map_slots=1)
        sim = Simulation()
        sched = LocalityScheduler(sim, cluster)
        sched.reset()
        sched._pending = [make_task("t0", 0, duration=5.0), make_task("t1", 1, duration=5.0)]
        for sid in sched._dispatch_order():
            sched._dispatch(sid)
        sim.run(until=1.0)
        cluster.fail(0)
        sched.handle_server_failure(0)
        sim.run()  # t0's stale completion event fires harmlessly
        assert 0 not in sched._slots
        assert sched.effective_assignments()["t0"].server == 1


class TestHealthAwarePlacement:
    @staticmethod
    def _monitor(open_server):
        from repro.faults import VirtualClock
        from repro.storage import HealthMonitor

        health = HealthMonitor(VirtualClock(), consecutive_limit=1, reset_timeout=1e9)
        health.record_error(open_server)
        return health

    def test_breaker_open_server_does_not_steal(self):
        cluster = Cluster.homogeneous(2, map_slots=1)
        sched = LocalityScheduler(Simulation(), cluster, health=self._monitor(1))
        tasks = [make_task(f"t{i}", 0, duration=10.0) for i in range(3)]
        assignments = sched.run_phase(tasks)
        assert {a.server for a in assignments} == {0}

    def test_breaker_open_owner_tasks_stealable_immediately(self):
        """Tasks homed on a distrusted server move without waiting for the
        locality delay, like tasks of a dead server."""
        cluster = Cluster.homogeneous(2, map_slots=1)
        sched = LocalityScheduler(
            Simulation(), cluster, locality_delay=50.0, health=self._monitor(0)
        )
        # Server 0's breaker is open: it still runs its local task, but its
        # queued surplus is taken over by server 1 at t=0.
        tasks = [make_task(f"t{i}", 0, duration=10.0) for i in range(2)]
        assignments = sched.run_phase(tasks)
        stolen = [a for a in assignments if a.server == 1]
        assert len(stolen) == 1
        assert stolen[0].start == 0.0

    def test_without_monitor_behaviour_unchanged(self):
        cluster = Cluster.homogeneous(2, map_slots=1)
        plain = LocalityScheduler(Simulation(), cluster)
        tasks = [make_task(f"t{i}", 0, duration=10.0) for i in range(3)]
        assignments = plain.run_phase(tasks)
        assert {a.server for a in assignments} == {0, 1}


class TestDeterminism:
    def test_same_inputs_same_schedule(self):
        def run():
            cluster = Cluster.homogeneous(3, map_slots=2)
            sched = LocalityScheduler(Simulation(), cluster)
            tasks = [make_task(f"t{i}", i % 3, nbytes=100 - i, duration=3.0 + i) for i in range(9)]
            return [(a.task.task_id, a.server, a.start, a.finish) for a in sched.run_phase(tasks)]

        assert run() == run()

"""Smoke tests: every shipped example must run clean.

Examples are the first thing a new user executes; these tests keep them
from rotting as the library evolves.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert len(EXAMPLES) >= 3, "the library promises at least three runnable examples"
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script} produced no output"

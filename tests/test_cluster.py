"""Tests for the cluster model: servers, topology, placement, failures."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterError,
    CopysetPlacement,
    FailureInjector,
    PerformanceAwarePlacement,
    PlacementError,
    RandomPlacement,
    RoundRobinPlacement,
    Server,
    SpreadPlacement,
    poisson_failure_trace,
)
from repro.sim import Simulation


class TestServer:
    def test_performance_metrics(self):
        s = Server(0, cpu_speed=0.4, disk_bandwidth=1000, network_bandwidth=2000)
        assert s.performance("cpu_speed") == 0.4
        assert s.performance("disk_bandwidth") == 1000
        assert s.performance("network_bandwidth") == 2000

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            Server(0).performance("quantum_flux")


class TestCluster:
    def test_homogeneous_factory(self):
        c = Cluster.homogeneous(5, map_slots=4)
        assert len(c) == 5
        assert all(s.map_slots == 4 for s in c)

    def test_heterogeneous_factory(self):
        c = Cluster.heterogeneous([1.0, 0.4, 0.4])
        assert c.server(1).cpu_speed == 0.4

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([Server(0), Server(0)])

    def test_fail_recover(self):
        c = Cluster.homogeneous(3)
        c.fail(1)
        assert c.alive_ids() == [0, 2]
        with pytest.raises(ClusterError):
            c.fail(1)
        c.recover(1)
        assert c.alive_ids() == [0, 1, 2]
        with pytest.raises(ClusterError):
            c.recover(1)

    def test_unknown_server(self):
        with pytest.raises(ClusterError):
            Cluster.homogeneous(2).server(9)

    def test_performance_vector_order(self):
        c = Cluster.heterogeneous([1.0, 0.5, 0.25])
        assert c.performance_vector([2, 0]) == [0.25, 1.0]

    def test_add_server(self):
        c = Cluster.homogeneous(2)
        srv = c.add_server(cpu_speed=2.0)
        assert srv.server_id == 2
        assert c.server(2).cpu_speed == 2.0


class TestPlacement:
    def test_round_robin(self):
        c = Cluster.homogeneous(6)
        assert RoundRobinPlacement().place(c, 4) == [0, 1, 2, 3]
        assert RoundRobinPlacement(offset=4).place(c, 4) == [4, 5, 0, 1]

    def test_round_robin_skips_failed(self):
        c = Cluster.homogeneous(6)
        c.fail(0)
        assert RoundRobinPlacement().place(c, 3) == [1, 2, 3]

    def test_random_is_seeded(self):
        c = Cluster.homogeneous(10)
        a = RandomPlacement(seed=7).place(c, 5)
        b = RandomPlacement(seed=7).place(c, 5)
        assert a == b
        assert len(set(a)) == 5

    def test_performance_aware_orders_by_speed(self):
        c = Cluster.heterogeneous([0.4, 1.0, 0.4, 2.0, 1.0])
        placed = PerformanceAwarePlacement().place(c, 3)
        assert placed == [3, 1, 4]

    def test_not_enough_servers(self):
        c = Cluster.homogeneous(3)
        with pytest.raises(PlacementError):
            RoundRobinPlacement().place(c, 4)

    def _racked(self, racks=4, per_rack=6):
        return Cluster.racked(racks, per_rack)

    def test_spread_caps_blocks_per_rack(self):
        c = self._racked()
        for _ in range(20):
            placed = SpreadPlacement(seed=3).place(c, 7)
            assert len(set(placed)) == 7
            per_rack = {}
            for sid in placed:
                per_rack[c.server(sid).rack] = per_rack.get(c.server(sid).rack, 0) + 1
            # ceil(7 blocks / 4 racks) = 2: no rack holds more than 2.
            assert max(per_rack.values()) <= 2

    def test_spread_is_seeded(self):
        c = self._racked()
        assert SpreadPlacement(seed=9).place(c, 7) == SpreadPlacement(seed=9).place(c, 7)

    def test_copyset_bounds_distinct_placements(self):
        c = self._racked()
        policy = CopysetPlacement(scatter_width=12, seed=1)
        sets = policy.copysets(c, 7)
        # p = ceil(12 / 6) = 2 permutations over 24 servers -> 6 copysets.
        assert len(sets) == 6
        seen = {tuple(policy.place(c, 7)) for _ in range(100)}
        # Every stripe lands wholly inside one of the prebuilt copysets.
        assert seen <= {tuple(s) for s in sets}
        assert len(seen) > 1

    def test_copyset_rack_isolation(self):
        c = self._racked()
        for cs in CopysetPlacement(scatter_width=12, seed=1).copysets(c, 7):
            per_rack = {}
            for sid in cs:
                per_rack[c.server(sid).rack] = per_rack.get(c.server(sid).rack, 0) + 1
            assert max(per_rack.values()) <= 2

    def test_copyset_rebuilds_on_membership_change(self):
        c = self._racked()
        policy = CopysetPlacement(scatter_width=12, seed=1)
        before = policy.copysets(c, 7)
        c.fail(0)
        after = policy.copysets(c, 7)
        assert all(0 not in cs for cs in after)
        assert after != before

    def test_copyset_scatter_width_validation(self):
        with pytest.raises(ValueError):
            CopysetPlacement(scatter_width=0)


class TestFailureInjection:
    def test_crash_at(self):
        sim = Simulation()
        c = Cluster.homogeneous(3)
        inj = FailureInjector(sim, c)
        inj.crash_at(5.0, 1)
        sim.run(until=4.0)
        assert not c.server(1).failed
        sim.run()
        assert c.server(1).failed

    def test_crash_with_recovery(self):
        sim = Simulation()
        c = Cluster.homogeneous(3)
        inj = FailureInjector(sim, c)
        ev = inj.crash_at(2.0, 0, recover_after=3.0)
        assert ev.recover_at == 5.0
        sim.run(until=3.0)
        assert c.server(0).failed
        sim.run()
        assert not c.server(0).failed

    def test_poisson_trace_deterministic(self):
        a = poisson_failure_trace(range(5), horizon=1000, mtbf=100, seed=3)
        b = poisson_failure_trace(range(5), horizon=1000, mtbf=100, seed=3)
        assert a == b
        assert all(e.time < 1000 for e in a)
        assert a == sorted(a, key=lambda e: e.time)

    def test_poisson_trace_permanent_failures_terminate(self):
        """Satellite regression: with ``mttr=None`` a server stays dead,
        so it must appear in the trace at most once — the old code kept
        re-killing permanently-failed servers every MTBF."""
        trace = poisson_failure_trace(range(8), horizon=10_000, mtbf=50, seed=2, mttr=None)
        assert trace  # horizon is 200x the MTBF; every server dies once
        ids = [e.server_id for e in trace]
        assert len(ids) == len(set(ids))
        assert all(e.recover_at is None for e in trace)

    def test_poisson_trace_with_recovery(self):
        trace = poisson_failure_trace(range(3), horizon=500, mtbf=50, seed=1, mttr=10)
        assert any(e.recover_at is not None for e in trace)
        for e in trace:
            if e.recover_at is not None:
                assert e.recover_at > e.time

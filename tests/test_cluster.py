"""Tests for the cluster model: servers, topology, placement, failures."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterError,
    FailureInjector,
    PerformanceAwarePlacement,
    PlacementError,
    RandomPlacement,
    RoundRobinPlacement,
    Server,
    poisson_failure_trace,
)
from repro.sim import Simulation


class TestServer:
    def test_performance_metrics(self):
        s = Server(0, cpu_speed=0.4, disk_bandwidth=1000, network_bandwidth=2000)
        assert s.performance("cpu_speed") == 0.4
        assert s.performance("disk_bandwidth") == 1000
        assert s.performance("network_bandwidth") == 2000

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            Server(0).performance("quantum_flux")


class TestCluster:
    def test_homogeneous_factory(self):
        c = Cluster.homogeneous(5, map_slots=4)
        assert len(c) == 5
        assert all(s.map_slots == 4 for s in c)

    def test_heterogeneous_factory(self):
        c = Cluster.heterogeneous([1.0, 0.4, 0.4])
        assert c.server(1).cpu_speed == 0.4

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([Server(0), Server(0)])

    def test_fail_recover(self):
        c = Cluster.homogeneous(3)
        c.fail(1)
        assert c.alive_ids() == [0, 2]
        with pytest.raises(ClusterError):
            c.fail(1)
        c.recover(1)
        assert c.alive_ids() == [0, 1, 2]
        with pytest.raises(ClusterError):
            c.recover(1)

    def test_unknown_server(self):
        with pytest.raises(ClusterError):
            Cluster.homogeneous(2).server(9)

    def test_performance_vector_order(self):
        c = Cluster.heterogeneous([1.0, 0.5, 0.25])
        assert c.performance_vector([2, 0]) == [0.25, 1.0]

    def test_add_server(self):
        c = Cluster.homogeneous(2)
        srv = c.add_server(cpu_speed=2.0)
        assert srv.server_id == 2
        assert c.server(2).cpu_speed == 2.0


class TestPlacement:
    def test_round_robin(self):
        c = Cluster.homogeneous(6)
        assert RoundRobinPlacement().place(c, 4) == [0, 1, 2, 3]
        assert RoundRobinPlacement(offset=4).place(c, 4) == [4, 5, 0, 1]

    def test_round_robin_skips_failed(self):
        c = Cluster.homogeneous(6)
        c.fail(0)
        assert RoundRobinPlacement().place(c, 3) == [1, 2, 3]

    def test_random_is_seeded(self):
        c = Cluster.homogeneous(10)
        a = RandomPlacement(seed=7).place(c, 5)
        b = RandomPlacement(seed=7).place(c, 5)
        assert a == b
        assert len(set(a)) == 5

    def test_performance_aware_orders_by_speed(self):
        c = Cluster.heterogeneous([0.4, 1.0, 0.4, 2.0, 1.0])
        placed = PerformanceAwarePlacement().place(c, 3)
        assert placed == [3, 1, 4]

    def test_not_enough_servers(self):
        c = Cluster.homogeneous(3)
        with pytest.raises(PlacementError):
            RoundRobinPlacement().place(c, 4)


class TestFailureInjection:
    def test_crash_at(self):
        sim = Simulation()
        c = Cluster.homogeneous(3)
        inj = FailureInjector(sim, c)
        inj.crash_at(5.0, 1)
        sim.run(until=4.0)
        assert not c.server(1).failed
        sim.run()
        assert c.server(1).failed

    def test_crash_with_recovery(self):
        sim = Simulation()
        c = Cluster.homogeneous(3)
        inj = FailureInjector(sim, c)
        ev = inj.crash_at(2.0, 0, recover_after=3.0)
        assert ev.recover_at == 5.0
        sim.run(until=3.0)
        assert c.server(0).failed
        sim.run()
        assert not c.server(0).failed

    def test_poisson_trace_deterministic(self):
        a = poisson_failure_trace(range(5), horizon=1000, mtbf=100, seed=3)
        b = poisson_failure_trace(range(5), horizon=1000, mtbf=100, seed=3)
        assert a == b
        assert all(e.time < 1000 for e in a)
        assert a == sorted(a, key=lambda e: e.time)

    def test_poisson_trace_with_recovery(self):
        trace = poisson_failure_trace(range(3), horizon=500, mtbf=50, seed=1, mttr=10)
        assert any(e.recover_at is not None for e in trace)
        for e in trace:
            if e.recover_at is not None:
                assert e.recover_at > e.time

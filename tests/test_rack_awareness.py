"""Tests for racks: topology, placement and cross-rack repair traffic."""

import pytest

from repro.cluster import Cluster, PlacementError, RackAwarePlacement
from repro.codes import LRCStructure, PyramidCode, ReedSolomonCode
from repro.core import GalloperCode
from repro.storage import DistributedFileSystem, RepairManager
from tests.conftest import payload_bytes


class TestRackedClusters:
    def test_racked_factory(self):
        c = Cluster.racked(3, 5)
        assert len(c) == 15
        racks = c.racks()
        assert set(racks) == {0, 1, 2}
        assert all(len(v) == 5 for v in racks.values())

    def test_failed_servers_leave_rack_listing(self):
        c = Cluster.racked(2, 3)
        c.fail(0)
        assert len(c.racks()[0]) == 2

    def test_default_single_rack(self):
        c = Cluster.homogeneous(4)
        assert set(c.racks()) == {0}


class TestRackAwarePlacement:
    def test_groups_fill_distinct_racks(self):
        st = LRCStructure(4, 2, 1)
        cluster = Cluster.racked(4, 4)
        placed = RackAwarePlacement(st).place(cluster, 7)
        rack_of = lambda b: cluster.server(placed[b]).rack
        # Each repair group shares one rack...
        for j in range(st.l):
            racks = {rack_of(b) for b in st.group_members(j)}
            assert len(racks) == 1, j
        # ... and the two groups use different racks.
        assert rack_of(0) != rack_of(3)
        # The global parity sits in yet another rack.
        assert rack_of(6) not in {rack_of(0), rack_of(3)}

    def test_all_symbol_gp_group_shares_rack(self):
        st = LRCStructure(4, 2, 2, all_symbol=True)
        cluster = Cluster.racked(4, 4)
        placed = RackAwarePlacement(st).place(cluster, st.n)
        rack_of = lambda b: cluster.server(placed[b]).rack
        racks = {rack_of(b) for b in st.group_members(st.gp_group_index)}
        assert len(racks) == 1

    def test_distinct_servers(self):
        st = LRCStructure(4, 2, 1)
        cluster = Cluster.racked(3, 3)
        placed = RackAwarePlacement(st).place(cluster, 7)
        assert len(set(placed)) == 7

    def test_rack_too_small_rejected(self):
        st = LRCStructure(6, 2, 1)  # groups of 4 blocks
        cluster = Cluster.racked(4, 3)  # racks hold only 3
        with pytest.raises(PlacementError):
            RackAwarePlacement(st).place(cluster, st.n)

    def test_block_count_checked(self):
        st = LRCStructure(4, 2, 1)
        with pytest.raises(PlacementError):
            RackAwarePlacement(st).place(Cluster.racked(3, 4), 5)


class TestCrossRackRepairTraffic:
    @pytest.fixture
    def env(self):
        st = LRCStructure(4, 2, 1)
        cluster = Cluster.racked(4, 4)
        dfs = DistributedFileSystem(cluster)
        payload = payload_bytes(28_000, seed=60)
        ef = dfs.write_file(
            "f", payload, code=GalloperCode(4, 2, 1), placement=RackAwarePlacement(st)
        )
        return cluster, dfs, ef, payload

    def test_local_repair_stays_in_rack(self, env):
        cluster, dfs, ef, _ = env
        cluster.fail(ef.server_of(1))
        report = RepairManager(dfs).repair_block("f", 1)
        assert report.cross_rack_bytes == 0
        # The rebuilt block stays in the group's rack.
        old_rack = 0
        assert cluster.server(report.target_server).rack == old_rack

    def test_global_repair_crosses_racks(self, env):
        cluster, dfs, ef, _ = env
        cluster.fail(ef.server_of(6))
        report = RepairManager(dfs).repair_block("f", 6)
        assert report.cross_rack_bytes > 0

    def test_rs_repairs_always_cross(self):
        cluster = Cluster.racked(3, 3)
        dfs = DistributedFileSystem(cluster)
        payload = payload_bytes(8_000, seed=61)
        # Round-robin scatters RS blocks over racks.
        ef = dfs.write_file("f", payload, code=ReedSolomonCode(4, 2))
        cluster.fail(ef.server_of(0))
        report = RepairManager(dfs).repair_block("f", 0)
        assert report.cross_rack_bytes > 0

    def test_file_intact_after_rack_local_repairs(self, env):
        cluster, dfs, ef, payload = env
        for block in (0, 4):
            victim = ef.server_of(block)
            cluster.fail(victim)
            RepairManager(dfs).repair_block("f", block)
            cluster.recover(victim)
            dfs.store.drop_server(victim)
        assert dfs.read_file("f") == payload

"""Tests for GF table generation."""

import numpy as np
import pytest

from repro.gf import tables


class TestExpLog:
    @pytest.mark.parametrize("q", tables.SUPPORTED_WIDTHS)
    def test_exp_cycle_visits_every_nonzero(self, q):
        exp, log = tables.generate_exp_log(q)
        order = (1 << q) - 1
        assert sorted(set(int(x) for x in exp[:order])) == list(range(1, 1 << q))

    @pytest.mark.parametrize("q", tables.SUPPORTED_WIDTHS)
    def test_log_inverts_exp(self, q):
        exp, log = tables.generate_exp_log(q)
        order = (1 << q) - 1
        for i in range(order):
            assert log[int(exp[i])] == i

    def test_exp_table_doubled_for_overflow_free_lookup(self):
        exp, _ = tables.generate_exp_log(8)
        assert len(exp) == 2 * 255
        assert np.array_equal(exp[:255], exp[255:])

    def test_non_primitive_poly_rejected(self):
        # x^8 + 1 (0x101) is not primitive over GF(2^8).
        with pytest.raises(tables.TableGenerationError):
            tables.generate_exp_log(8, primitive_poly=0x101)

    def test_unsupported_width_rejected(self):
        with pytest.raises(tables.TableGenerationError):
            tables.generate_exp_log(23)

    def test_cached_tables_are_readonly(self):
        exp, log = tables.exp_log_tables(8)
        with pytest.raises(ValueError):
            exp[0] = 7
        with pytest.raises(ValueError):
            log[1] = 7


class TestMulTable:
    def test_full_table_agrees_with_log_arithmetic(self):
        table = tables.full_mul_table(8)
        exp, log = tables.exp_log_tables(8)
        rng = np.random.default_rng(1)
        for _ in range(200):
            a, b = int(rng.integers(1, 256)), int(rng.integers(1, 256))
            expect = int(exp[log[a] + log[b]])
            assert int(table[a, b]) == expect

    def test_zero_row_and_column(self):
        table = tables.full_mul_table(8)
        assert not table[0, :].any()
        assert not table[:, 0].any()

    def test_one_is_identity(self):
        table = tables.full_mul_table(8)
        assert np.array_equal(table[1], np.arange(256, dtype=np.uint8))

    def test_refused_for_wide_fields(self):
        with pytest.raises(tables.TableGenerationError):
            tables.full_mul_table(16)

    def test_small_field_table(self):
        table = tables.full_mul_table(4)
        # GF(16): closed and commutative.
        assert table.shape == (16, 16)
        assert np.array_equal(table, table.T)


class TestInverseTable:
    @pytest.mark.parametrize("q", [2, 4, 8, 16])
    def test_inverse_property(self, q):
        inv = tables.inverse_table(q)
        exp, log = tables.exp_log_tables(q)
        order = (1 << q) - 1
        for a in [1, 2, 3, 5, order, order - 1]:
            if a >= (1 << q):
                continue
            b = int(inv[a])
            prod = int(exp[log[a] + log[b]]) if a and b else 0
            assert prod == 1

    def test_zero_entry_is_zero(self):
        assert tables.inverse_table(8)[0] == 0

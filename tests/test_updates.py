"""Tests for in-place parity updates."""

import numpy as np
import pytest

from repro.codes import CarouselCode, PyramidCode, ReedSolomonCode, ReplicationCode
from repro.codes.base import CodeError
from repro.codes.update import apply_update, update_cost, update_plan
from repro.core import GalloperCode
from repro.gf import random_symbols

ALL_CODES = [
    pytest.param(lambda: ReedSolomonCode(4, 2), id="rs"),
    pytest.param(lambda: PyramidCode(4, 2, 1), id="pyramid"),
    pytest.param(lambda: GalloperCode(4, 2, 1), id="galloper"),
    pytest.param(lambda: CarouselCode(4, 2), id="carousel"),
    pytest.param(lambda: ReplicationCode(4, 2), id="replication"),
    pytest.param(lambda: GalloperCode(4, 2, 2, all_symbol=True), id="galloper-allsym"),
]


@pytest.fixture(params=ALL_CODES)
def code(request):
    return request.param()


class TestApplyUpdate:
    def test_every_stripe_update_matches_reencode(self, code):
        data = random_symbols(code.gf, (code.data_stripe_total, 12), seed=3)
        blocks = code.encode(data)
        for j in range(code.data_stripe_total):
            new_value = random_symbols(code.gf, 12, seed=1000 + j)
            apply_update(code, blocks, j, new_value)
            data[j] = new_value
            assert np.array_equal(blocks, code.encode(data)), j

    def test_update_back_and_forth_is_identity(self, code):
        data = random_symbols(code.gf, (code.data_stripe_total, 8), seed=4)
        blocks = code.encode(data)
        snapshot = blocks.copy()
        new_value = random_symbols(code.gf, 8, seed=5)
        apply_update(code, blocks, 0, new_value)
        apply_update(code, blocks, 0, data[0], old_value=new_value)
        assert np.array_equal(blocks, snapshot)

    def test_explicit_old_value(self, code):
        data = random_symbols(code.gf, (code.data_stripe_total, 8), seed=6)
        blocks = code.encode(data)
        new_value = random_symbols(code.gf, 8, seed=7)
        apply_update(code, blocks, 1, new_value, old_value=data[1])
        data[1] = new_value
        assert np.array_equal(blocks, code.encode(data))

    def test_out_of_range_stripe(self, code):
        with pytest.raises(CodeError):
            update_plan(code, code.data_stripe_total)


class TestUpdatePlans:
    def test_rs_touches_self_plus_parities(self):
        code = ReedSolomonCode(4, 2)
        for j in range(4):
            plan = update_plan(code, j)
            assert plan.blocks_touched == 3  # itself + 2 parity blocks
            assert (j, 0, 1) in plan.touched

    def test_pyramid_touches_local_and_global(self):
        code = PyramidCode(4, 2, 1)
        plan = update_plan(code, 0)
        blocks = {b for b, _, _ in plan.touched}
        assert blocks == {0, 2, 6}  # data block, its local parity, global

    def test_cost_summary_shapes(self):
        rs = update_cost(ReedSolomonCode(4, 2))
        pyr = update_cost(PyramidCode(4, 2, 1))
        gal = update_cost(GalloperCode(4, 2, 1))
        assert rs["avg_blocks"] == 3.0
        assert pyr["avg_blocks"] == 3.0
        # Galloper pays a modest write-amplification premium for
        # spreading data into parity blocks.
        assert 3.0 < gal["avg_blocks"] <= 5.0

    def test_bytes_written(self):
        plan = update_plan(ReedSolomonCode(4, 2), 2)
        assert plan.bytes_written(1000) == 3000

    def test_replication_touches_every_copy(self):
        code = ReplicationCode(4, 3)
        plan = update_plan(code, 0)
        assert plan.blocks_touched == 3
        assert all(c == 1 for _, _, c in plan.touched)

"""Multi-tenant serving gateway: cache, coalescing, QoS, hedged reads.

Covers the serving package end to end on simulated time: the TinyLFU
cache's admission policy, request coalescing, tenant token-lease
throttling, the gateway request path (clean, cached, coalesced,
degraded, hedged), repair-as-serving-traffic, and the workload
generator's determinism.  Every payload assertion is byte-exact against
the deterministic :func:`file_payload` the workload uses.
"""

import numpy as np
import pytest

from repro.cluster.topology import Cluster
from repro.codes import PyramidCode, ReedSolomonCode
from repro.core import GalloperCode
from repro.faults.model import FaultModel, GraySlowdown
from repro.serving import (
    FlashCrowd,
    FrequencySketch,
    GatewayConfig,
    HotBlockCache,
    RequestCoalescer,
    ScratchClock,
    ServingError,
    ServingGateway,
    TenantThrottle,
    WorkloadGenerator,
    WorkloadSpec,
    file_payload,
    populate,
)
from repro.sim.aio import SimLoop
from repro.storage.filesystem import DistributedFileSystem, FileSystemError
from repro.storage.metrics import MetricsRegistry

CODES = {
    "rs": lambda: ReedSolomonCode(4, 3),
    "pyramid": lambda: PyramidCode(4, 2, 1),
    "galloper": lambda: GalloperCode(4, 2, 1),
}


def run(loop, coro):
    return loop.run_until_complete(loop.create_task(coro))


def make_gateway(servers=12, fault_model=None, **cfg):
    cluster = Cluster.homogeneous(servers)
    dfs = DistributedFileSystem(cluster, fault_model=fault_model)
    return ServingGateway(dfs, config=GatewayConfig(**cfg))


def put_file(gateway, make_code, tenant="alpha", key="f0", size=8192):
    payload = file_payload(tenant, 0, size)
    gateway.put(tenant, key, payload, code=make_code())
    return payload


# ------------------------------------------------------------------- cache


class TestFrequencySketch:
    def test_record_and_estimate(self):
        sketch = FrequencySketch(sample_period=1000)
        for _ in range(3):
            sketch.record("hot")
        sketch.record("cold")
        assert sketch.estimate("hot") == 3
        assert sketch.estimate("cold") == 1
        assert sketch.estimate("unseen") == 0

    def test_aging_halves_counts(self):
        sketch = FrequencySketch(sample_period=4)
        for _ in range(3):
            sketch.record("hot")
        sketch.record("once")  # 4th access triggers the halving
        assert sketch.estimate("hot") == 1
        assert sketch.estimate("once") == 0  # halved to zero, dropped

    def test_sample_period_validated(self):
        with pytest.raises(ValueError):
            FrequencySketch(sample_period=0)


class TestHotBlockCache:
    def test_hit_miss_counters(self):
        cache = HotBlockCache(4, metrics=MetricsRegistry())
        assert cache.get("k") is None
        cache.offer("k", "V")
        assert cache.get("k") == "V"
        assert cache.metrics.total("serving_cache_misses") == 1
        assert cache.metrics.total("serving_cache_hits") == 1
        assert cache.hit_ratio() == pytest.approx(0.5)

    def test_admission_filter_protects_warm_victim(self):
        cache = HotBlockCache(2, metrics=MetricsRegistry(), sample_period=10_000)
        cache.offer("a", "A")
        cache.offer("b", "B")
        cache.get("a")
        cache.get("a")  # a is warm (freq 2); b untouched (freq 0)
        cache.get("c")  # c seen once
        # c (freq 1) displaces the cold LRU victim b (freq 0)...
        assert cache.offer("c", "C") is True
        assert "b" not in cache and "c" in cache
        # ...but an unseen d cannot displace warm a.
        assert cache.offer("d", "D") is False
        assert "a" in cache and "d" not in cache
        assert cache.metrics.total("serving_cache_evictions") == 1
        assert cache.metrics.total("serving_cache_rejections") == 1

    def test_resident_key_refreshes_in_place(self):
        cache = HotBlockCache(1, metrics=MetricsRegistry())
        cache.offer("k", "old")
        assert cache.offer("k", "new") is True
        assert cache.get("k") == "new"

    def test_invalidate(self):
        cache = HotBlockCache(2, metrics=MetricsRegistry())
        cache.offer("k", "V")
        cache.invalidate("k")
        assert "k" not in cache
        cache.invalidate("k")  # idempotent

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            HotBlockCache(0)


# --------------------------------------------------------------- coalescing


class TestRequestCoalescer:
    def test_leader_then_followers(self):
        loop = SimLoop()
        co = RequestCoalescer(loop, metrics=MetricsRegistry())
        leader, fut = co.lease("s")
        assert leader and co.inflight == 1
        follower, fut2 = co.lease("s")
        assert not follower and fut2 is fut
        co.complete("s", 42)
        assert fut.result() == 42
        assert co.inflight == 0
        assert co.metrics.total("serving_coalesced_reads") == 1

    def test_failure_propagates_to_followers(self):
        loop = SimLoop()
        co = RequestCoalescer(loop, metrics=MetricsRegistry())
        _, fut = co.lease("s")
        co.lease("s")
        co.fail("s", OSError("disk gone"))
        assert isinstance(fut.exception(), OSError)

    def test_distinct_keys_do_not_coalesce(self):
        loop = SimLoop()
        co = RequestCoalescer(loop, metrics=MetricsRegistry())
        assert co.lease("a")[0] and co.lease("b")[0]
        assert co.metrics.total("serving_coalesced_reads") == 0


# ---------------------------------------------------------------------- qos


class TestTenantThrottle:
    def _run_pair(self, throttle, loop, tenant="t", hold=1.0, release=True):
        starts = []

        async def job(i):
            lease = await throttle.acquire(tenant, 10.0)
            starts.append((i, loop.now))
            await loop.sleep(hold)
            if release:
                throttle.release(lease)

        loop.create_task(job(0))
        loop.create_task(job(1))
        loop.run()
        return starts

    def test_cap_serializes_requests(self):
        loop = SimLoop()
        throttle = TenantThrottle(loop, max_inflight=1, metrics=MetricsRegistry())
        starts = self._run_pair(throttle, loop)
        assert [i for i, _ in starts] == [0, 1]
        assert starts[0][1] == pytest.approx(0.0)
        assert starts[1][1] == pytest.approx(1.0)  # woken by the release
        assert throttle.metrics.total("tenant_throttle_waits") == 1

    def test_lease_expiry_bounds_a_leak(self):
        loop = SimLoop()
        throttle = TenantThrottle(loop, max_inflight=1, metrics=MetricsRegistry())
        starts = self._run_pair(throttle, loop, release=False)
        # Never released: the second admit waits for the 10s self-expiry.
        assert starts[1][1] == pytest.approx(10.0, abs=1e-6)

    def test_per_tenant_limits_are_independent(self):
        loop = SimLoop()
        throttle = TenantThrottle(
            loop, max_inflight=8, limits={"repair": 1}, metrics=MetricsRegistry()
        )
        assert throttle.cap("repair") == 1
        assert throttle.cap("alpha") == 8
        repair_starts = self._run_pair(throttle, loop, tenant="repair")
        assert repair_starts[1][1] == pytest.approx(1.0)
        loop2 = SimLoop()
        throttle2 = TenantThrottle(
            loop2, max_inflight=8, limits={"repair": 1}, metrics=MetricsRegistry()
        )
        alpha_starts = self._run_pair(throttle2, loop2, tenant="alpha")
        assert alpha_starts[1][1] == pytest.approx(0.0)

    def test_caps_validated(self):
        loop = SimLoop()
        with pytest.raises(ValueError):
            TenantThrottle(loop, max_inflight=0)
        with pytest.raises(ValueError):
            TenantThrottle(loop, limits={"t": 0})


# ------------------------------------------------------------------ gateway


class TestScratchClock:
    def test_pin_and_advance(self):
        clock = ScratchClock()
        clock.pin(5.0)
        assert clock.now == 5.0
        clock.advance(0.25)
        assert clock.now == 5.25
        clock.advance(-1.0)  # negative advances are ignored
        assert clock.now == 5.25


class TestGatewayReads:
    @pytest.mark.parametrize("code_name", CODES, ids=CODES.keys())
    def test_roundtrip_byte_exact(self, code_name):
        gateway = make_gateway()
        payload = put_file(gateway, CODES[code_name])
        got = run(gateway.loop, gateway.read("alpha", "f0"))
        assert got == payload

    @pytest.mark.parametrize("code_name", CODES, ids=CODES.keys())
    def test_extent_slicing(self, code_name):
        gateway = make_gateway()
        payload = put_file(gateway, CODES[code_name])
        for offset, length in [(0, 100), (1000, 4096), (8000, 10_000), (0, None)]:
            got = run(gateway.loop, gateway.read("alpha", "f0", offset, length))
            end = len(payload) if length is None else min(len(payload), offset + length)
            assert got == payload[offset:end]

    def test_tenant_namespaces_are_isolated(self):
        gateway = make_gateway()
        pa = file_payload("alpha", 0, 4096)
        pb = file_payload("beta", 0, 4096)
        gateway.put("alpha", "f0", pa, code=GalloperCode(4, 2, 1))
        gateway.put("beta", "f0", pb, code=GalloperCode(4, 2, 1))
        assert run(gateway.loop, gateway.read("alpha", "f0")) == pa
        assert run(gateway.loop, gateway.read("beta", "f0")) == pb

    def test_tenant_name_with_slash_rejected(self):
        with pytest.raises(ServingError):
            ServingGateway.qualify("a/b", "key")

    def test_missing_file_raises(self):
        gateway = make_gateway()
        task = gateway.loop.create_task(gateway.read("alpha", "nope"))
        gateway.loop.run()
        assert isinstance(task.exception(), FileSystemError)

    def test_second_read_hits_cache(self):
        gateway = make_gateway()
        payload = put_file(gateway, CODES["galloper"])
        run(gateway.loop, gateway.read("alpha", "f0"))
        misses = gateway.metrics.total("serving_cache_misses")
        assert run(gateway.loop, gateway.read("alpha", "f0")) == payload
        assert gateway.metrics.total("serving_cache_hits") > 0
        assert gateway.metrics.total("serving_cache_misses") == misses

    def test_concurrent_same_stripe_reads_coalesce(self):
        gateway = make_gateway(cache_entries=1, cache_sample_period=10)
        payload = put_file(gateway, CODES["galloper"], size=2048)

        async def both():
            a = gateway.loop.create_task(gateway.read("alpha", "f0"))
            b = gateway.loop.create_task(gateway.read("alpha", "f0"))
            return await gateway.loop.gather(a, b)

        got = run(gateway.loop, both())
        assert got == [payload, payload]
        assert gateway.metrics.total("serving_coalesced_reads") > 0

    def test_slo_and_read_counters(self):
        gateway = make_gateway()
        put_file(gateway, CODES["galloper"])
        for _ in range(3):
            run(gateway.loop, gateway.read("alpha", "f0"))
        counters = gateway.counters()
        assert counters["reads_ok"] == 3
        assert counters["reads_failed"] == 0
        assert counters["slo_ok"] == 3  # unloaded reads sit far under the SLO

    def test_counters_schema_is_stable(self):
        gateway = make_gateway()
        assert set(gateway.counters()) == {
            "cache_hits", "cache_misses", "cache_admissions", "cache_rejections",
            "cache_evictions", "coalesced_reads", "hedges_fired", "hedges_won",
            "hedge_losers_discarded", "client_hedged_reads", "client_hedged_wins",
            "client_hedged_losers_discarded", "degraded_reads", "throttle_waits",
            "repair_blocks", "reads_ok", "reads_failed", "slo_ok", "unavailable",
        }


class TestDegradedServing:
    @pytest.mark.parametrize("code_name", CODES, ids=CODES.keys())
    def test_read_survives_holder_failure(self, code_name):
        gateway = make_gateway()
        payload = put_file(gateway, CODES[code_name])
        ef = gateway.dfs.file("alpha/f0")
        block, _row = gateway.dfs.stripe_holders("alpha/f0")[0]
        gateway.dfs.cluster.fail(ef.server_of(block))
        got = run(gateway.loop, gateway.read("alpha", "f0"))
        assert got == payload
        assert gateway.counters()["degraded_reads"] > 0

    def test_unrecoverable_extent_is_serving_error(self):
        gateway = make_gateway(servers=12)
        put_file(gateway, CODES["galloper"])
        ef = gateway.dfs.file("alpha/f0")
        for server in set(ef.placement.values()):
            gateway.dfs.cluster.fail(server)
        task = gateway.loop.create_task(gateway.read("alpha", "f0"))
        gateway.loop.run()
        assert isinstance(task.exception(), ServingError)
        counters = gateway.counters()
        assert counters["reads_failed"] == 1
        assert counters["unavailable"] > 0


class TestHedgedServing:
    """The hedged degraded read in the serving path (satellite check)."""

    def _deep_queue_gateway(self):
        gateway = make_gateway(hedge_threshold=0.005)
        payload = put_file(gateway, CODES["galloper"])
        block, _row = gateway.dfs.stripe_holders("alpha/f0")[0]
        primary = gateway.dfs.file("alpha/f0").server_of(block)
        # A deep primary queue: the predicted completion exceeds both the
        # hedge threshold and the repair group's predicted decode time.
        gateway._busy_until[primary] = gateway.loop.now + 1.0
        return gateway, payload

    def test_hedge_fires_and_wins_byte_exact(self):
        gateway, payload = self._deep_queue_gateway()
        got = run(gateway.loop, gateway.read("alpha", "f0", 0, 1024))
        assert got == payload[:1024]
        counters = gateway.counters()
        assert counters["hedges_fired"] >= 1
        assert counters["hedges_won"] >= 1  # 1s queue loses to the group decode

    def test_exactly_one_success_counted_per_read(self):
        gateway, _ = self._deep_queue_gateway()
        run(gateway.loop, gateway.read("alpha", "f0", 0, 1024))
        counters = gateway.counters()
        assert counters["reads_ok"] == 1
        assert counters["reads_failed"] == 0

    def test_loser_runs_to_completion_and_is_discarded(self):
        gateway, _ = self._deep_queue_gateway()
        # run_until_complete drains the sim, so the queued primary (the
        # loser) finishes after the response was already served.
        run(gateway.loop, gateway.read("alpha", "f0", 0, 1024))
        counters = gateway.counters()
        assert counters["hedge_losers_discarded"] == counters["hedges_fired"]

    def test_no_hedge_when_queue_is_shallow(self):
        gateway = make_gateway(hedge_threshold=0.005)
        put_file(gateway, CODES["galloper"])
        run(gateway.loop, gateway.read("alpha", "f0"))
        assert gateway.counters()["hedges_fired"] == 0

    def test_hedges_disabled_by_config(self):
        gateway = make_gateway(hedge_threshold=None)
        payload = put_file(gateway, CODES["galloper"])
        block, _row = gateway.dfs.stripe_holders("alpha/f0")[0]
        primary = gateway.dfs.file("alpha/f0").server_of(block)
        gateway._busy_until[primary] = gateway.loop.now + 1.0
        assert run(gateway.loop, gateway.read("alpha", "f0", 0, 1024)) == payload[:1024]
        assert gateway.counters()["hedges_fired"] == 0

    def test_byte_exact_under_gray_slowdown(self):
        # Client-level (same-server) hedges: a cluster-wide gray slowdown
        # pushes every read past the resilient client's hedge threshold;
        # responses stay byte-exact and each read counts exactly once.
        fault_model = FaultModel(
            GraySlowdown(extra_latency=0.08), seed=11
        )
        gateway = make_gateway(fault_model=fault_model)
        payload = put_file(gateway, CODES["galloper"])
        for _ in range(3):
            assert run(gateway.loop, gateway.read("alpha", "f0")) == payload
        counters = gateway.counters()
        assert counters["client_hedged_reads"] > 0
        assert counters["reads_ok"] == 3
        assert counters["reads_failed"] == 0


class TestRepairAsServing:
    def test_repair_rebuilds_and_relocates(self):
        gateway = make_gateway(tenant_limits={"repair": 2})
        payload = put_file(gateway, CODES["galloper"])
        ef = gateway.dfs.file("alpha/f0")
        victim = ef.server_of(0)
        lost = len(ef.blocks_on_server(victim))
        gateway.dfs.cluster.fail(victim)
        rebuilt = run(gateway.loop, gateway.repair_server(victim))
        assert rebuilt == lost
        assert gateway.counters()["repair_blocks"] == lost
        assert not gateway.dfs.file("alpha/f0").blocks_on_server(victim)
        # Recover the server (empty) — reads must come off the new homes.
        gateway.dfs.cluster.recover(victim)
        assert run(gateway.loop, gateway.read("alpha", "f0")) == payload

    def test_repair_competes_through_the_throttle(self):
        gateway = make_gateway(tenant_limits={"repair": 1})
        put_file(gateway, CODES["galloper"])
        victim = gateway.dfs.file("alpha/f0").server_of(0)
        gateway.dfs.cluster.fail(victim)
        run(gateway.loop, gateway.repair_server(victim))
        # One lease at a time: at least one repair admit had to wait
        # whenever more than one block was lost, and the per-tenant
        # histogram recorded the repair tenant.
        all_metrics = gateway.metrics.snapshot_all()
        assert "tenant_throttle_wait_s[repair]" in str(all_metrics)


# ----------------------------------------------------------------- workload


class TestWorkloadGenerator:
    def test_zipf_head_is_hottest(self):
        spec = WorkloadSpec(files_per_tenant=32, clients=2000, requests_per_client=1, seed=5)
        gen = WorkloadGenerator(spec)
        counts = np.bincount(gen._files, minlength=32)
        assert counts[0] == counts.max()
        assert counts[0] > 3 * counts[16:].max()

    def test_same_seed_same_plan(self):
        spec = WorkloadSpec(clients=100, seed=9)
        a, b = WorkloadGenerator(spec), WorkloadGenerator(spec)
        assert np.array_equal(a._files, b._files)
        assert np.array_equal(a._offsets, b._offsets)

    def test_flash_crowd_redirects_inside_window(self):
        crowd = FlashCrowd(start=1.0, end=2.0, key_index=7, fraction=1.0)
        spec = WorkloadSpec(files_per_tenant=16, clients=10, flash_crowd=crowd, seed=0)
        gen = WorkloadGenerator(spec)
        key, _ = gen._request(0, now=1.5)
        assert key == spec.key(7)
        outside, _ = gen._request(0, now=3.0)
        assert outside == spec.key(int(gen._files[0]))

    def test_diurnal_scale_breathes(self):
        spec = WorkloadSpec(diurnal_amplitude=0.5, diurnal_period=4.0)
        gen = WorkloadGenerator(spec)
        peak = gen._think_scale(1.0)  # sin peak -> load high -> think short
        trough = gen._think_scale(3.0)
        assert peak < 1.0 < trough

    def test_closed_loop_run_completes_all_clients(self):
        gateway = make_gateway()
        spec = WorkloadSpec(
            tenants=("alpha", "beta"), files_per_tenant=4, clients=40,
            requests_per_client=2, read_size=1024, file_size=4096,
            think_time=0.01, seed=3,
        )
        populate(gateway, spec, CODES["galloper"])
        result = WorkloadGenerator(spec).run(gateway)
        assert result.completed_clients == 40
        assert len(result.latencies) == 80
        assert result.failures == 0
        assert result.availability() == 1.0
        assert result.percentile(99) >= result.percentile(50) > 0

    def test_percentile_nearest_rank(self):
        from repro.serving import WorkloadResult

        res = WorkloadResult(latencies=[0.01 * i for i in range(1, 101)])
        assert res.percentile(50) == pytest.approx(0.50)
        assert res.percentile(99) == pytest.approx(0.99)
        assert res.percentile(100) == pytest.approx(1.00)
        assert WorkloadResult().percentile(99) == 0.0

"""Tests for the greedy fallback repair planner under compound failures."""

import numpy as np
import pytest

from repro.codes import DecodingError, PyramidCode
from repro.core import GalloperCode
from repro.gf import random_symbols


class TestGreedyFallback:
    def test_helper_set_grows_past_k_when_needed(self):
        """Losing a group peer makes 4 helpers insufficient for block 0:
        {D3, D4, L1, L2} is rank-deficient (L2 = D3 + D4), so the plan
        must grow to 5 blocks."""
        code = PyramidCode(4, 2, 1)
        plan = code.repair_plan(0, failed={1})
        assert plan.blocks_read == 5
        assert 1 not in plan.helpers

    def test_fallback_plan_actually_reconstructs(self):
        code = PyramidCode(4, 2, 1)
        data = random_symbols(code.gf, (4, 9), seed=70)
        blocks = code.encode(data)
        plan = code.repair_plan(0, failed={1})
        avail = {b: blocks[b] for b in plan.helpers}
        rebuilt, _ = code.reconstruct(0, avail, plan)
        assert np.array_equal(rebuilt, blocks[0])

    def test_galloper_fallback_matches_pyramid_size(self):
        pyramid = PyramidCode(4, 2, 1)
        galloper = GalloperCode(4, 2, 1)
        for failed_peer in (1, 2):
            p = pyramid.repair_plan(0, failed={failed_peer})
            g = galloper.repair_plan(0, failed={failed_peer})
            assert p.blocks_read == g.blocks_read, failed_peer

    def test_beyond_tolerance_plan_fails_cleanly(self):
        code = PyramidCode(4, 2, 1)
        # Pattern {0, 1, 6} is not decodable: planning block 0's repair
        # with {1, 6} already gone must raise, not loop.
        with pytest.raises(DecodingError):
            code.repair_plan(0, failed={1, 6})

    def test_reconstruct_rejects_missing_helper(self):
        code = PyramidCode(4, 2, 1)
        data = random_symbols(code.gf, (4, 5), seed=71)
        blocks = code.encode(data)
        plan = code.repair_plan(0)
        partial = {h: blocks[h] for h in plan.helpers[:-1]}
        with pytest.raises(DecodingError):
            code.reconstruct(0, partial, plan)

    def test_two_group_failures_need_global_help(self):
        """Both data blocks of group 0 lost: each repair must reach into
        the other group / global parity."""
        code = GalloperCode(4, 2, 1)
        data = random_symbols(code.gf, (code.data_stripe_total, 4), seed=72)
        blocks = code.encode(data)
        plan = code.repair_plan(0, failed={1})
        avail = {b: blocks[b] for b in plan.helpers}
        rebuilt, _ = code.reconstruct(0, avail, plan)
        assert np.array_equal(rebuilt, blocks[0])
        assert any(b >= 3 for b in plan.helpers)

"""Tier-1 tests for the years-scale reliability simulator.

Everything here is seeded and runs in seconds: lifetime-model
calibration, simulator determinism, the analytic cross-validation
satellite, correlated rack-failure placement behaviour, and the latent
sector error / scrub detection channels.  The long-horizon campaign
assertions live in ``test_reliability_long.py`` behind the
``reliability`` marker.
"""

import random

import pytest

from repro.analysis.reliability import ReliabilityParameters, mttdl_hours
from repro.cluster import RandomPlacement, RoundRobinPlacement, SpreadPlacement
from repro.codes import ReedSolomonCode
from repro.reliability import (
    ExponentialLifetime,
    ReliabilityConfig,
    WeibullLifetime,
    simulate_reliability,
)

GB = 1 << 30
MB = 1 << 20


class TestLifetimeModels:
    def test_exponential_mean(self):
        model = ExponentialLifetime(1_000.0)
        assert model.mean_hours() == 1_000.0
        rng = random.Random(1)
        mean = sum(model.sample(rng) for _ in range(20_000)) / 20_000
        assert mean == pytest.approx(1_000.0, rel=0.05)

    def test_weibull_from_mean_calibration(self):
        for shape in (0.7, 1.0, 2.0, 4.0):
            model = WeibullLifetime.from_mean(1_000.0, shape)
            assert model.mean_hours() == pytest.approx(1_000.0, rel=1e-9)
            rng = random.Random(2)
            mean = sum(model.sample(rng) for _ in range(20_000)) / 20_000
            assert mean == pytest.approx(1_000.0, rel=0.05)

    def test_shape_selects_regime(self):
        # Infant mortality front-loads deaths: the median sits far below
        # the mean; wear-out concentrates them: the median approaches it.
        infant = WeibullLifetime.infant_mortality(1_000.0)
        wearout = WeibullLifetime.wear_out(1_000.0)
        assert infant.shape < 1.0 < wearout.shape

        def median(model):
            rng = random.Random(3)
            xs = sorted(model.sample(rng) for _ in range(4_001))
            return xs[2_000]

        assert median(infant) < 0.7 * 1_000.0
        assert median(wearout) > 0.8 * 1_000.0

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ExponentialLifetime(0.0)
        with pytest.raises(ValueError):
            WeibullLifetime(1_000.0, -1.0)
        with pytest.raises(ValueError):
            WeibullLifetime.infant_mortality(1_000.0, shape=1.5)
        with pytest.raises(ValueError):
            WeibullLifetime.wear_out(1_000.0, shape=0.5)

    def test_describe(self):
        d = WeibullLifetime.wear_out(500.0).describe()
        assert d["model"] == "weibull"
        assert d["shape"] == 2.0
        assert d["mean_hours"] == pytest.approx(500.0)


class TestConfigValidation:
    def test_lifetime_required(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(horizon_years=1.0)

    def test_bad_kill_fraction(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(
                disk_lifetime=ExponentialLifetime(100.0), rack_kill_fraction=1.5
            )

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(disk_lifetime=ExponentialLifetime(100.0), horizon_years=0.0)


def _run(code, placement, config, **kw):
    kw.setdefault("num_racks", 4)
    kw.setdefault("servers_per_rack", 6)
    kw.setdefault("stripes", 12)
    kw.setdefault("trials", 2)
    kw.setdefault("seed", 11)
    return simulate_reliability(code, placement, config, **kw)


class TestSimulator:
    def test_deterministic(self):
        config = ReliabilityConfig(
            horizon_years=1.0,
            disk_lifetime=ExponentialLifetime(800.0),
            rack_mtbf_hours=3_000.0,
            rack_kill_fraction=0.5,
            lse_rate_per_block_hour=1e-4,
            scrub_interval_hours=200.0,
            block_size_bytes=GB,
            repair_bandwidth=20 * MB,
        )
        a = _run(ReedSolomonCode(4, 3), RandomPlacement(seed=5), config)
        b = _run(ReedSolomonCode(4, 3), RandomPlacement(seed=5), config)
        assert a.summary() == b.summary()

    def test_quiet_cluster_loses_nothing(self):
        config = ReliabilityConfig(
            horizon_years=2.0, disk_lifetime=ExponentialLifetime(1e12)
        )
        r = _run(ReedSolomonCode(4, 3), RandomPlacement(seed=1), config)
        assert r.losses == 0
        assert r.repairs_completed == 0
        assert r.stripe_hours == pytest.approx(2 * 12 * r.horizon_hours)
        assert r.summary()["mttdl_hours"] is None
        # Zero observed losses reports the detection-floor nines, not inf.
        assert 0 < r.nines < 10

    def test_disk_failures_are_repaired(self):
        config = ReliabilityConfig(
            horizon_years=2.0,
            disk_lifetime=ExponentialLifetime(2_000.0),
            replacement_hours=4.0,
            block_size_bytes=64 * MB,
            repair_bandwidth=100 * MB,
        )
        r = _run(ReedSolomonCode(4, 3), RandomPlacement(seed=2), config)
        assert r.disk_failures > 0
        assert r.repairs_completed > 0
        assert r.losses == 0  # fast repairs, independent failures only
        assert r.repair_bytes_read > 0
        # RS(4, 3) reads k = 4 helper blocks per rebuilt block.
        assert r.bytes_read_per_repair == pytest.approx(4 * 64 * MB)

    def test_analytic_cross_validation(self):
        """Satellite: sim-vs-Markov MTTDL agreement, tolerance factor 3.

        Independent exponential failures, instant replacement, a single
        repair crew — the Markov chain's regime.  The simulator's
        deterministic repair durations (no exponential tail) make it
        slightly *more* durable than the chain, so agreement lands
        around 1.5-2x; a factor-3 band is the stated tolerance, and the
        pinned seed makes the check exact-deterministic in CI.
        """
        code = ReedSolomonCode(4, 2)
        config = ReliabilityConfig(
            horizon_years=1.0,
            disk_lifetime=ExponentialLifetime(100.0),
            replacement_hours=0.0,
            block_size_bytes=256 * MB,
            repair_bandwidth=MB,
            max_concurrent_repairs=1,
        )
        r = simulate_reliability(
            code,
            RandomPlacement(seed=0),
            config,
            num_racks=1,
            servers_per_rack=code.n,
            stripes=1,
            trials=200,
            seed=2026,
        )
        analytic = mttdl_hours(
            code,
            ReliabilityParameters(
                disk_mtbf_hours=100.0, block_size_bytes=256 * MB, repair_bandwidth=MB
            ),
        )
        assert r.losses >= 5  # enough events for the estimate to mean anything
        ratio = r.mttdl_hours / analytic
        assert 1 / 3 < ratio < 3


class TestCorrelatedFailures:
    def _rack_config(self, **overrides):
        base = dict(
            horizon_years=1.0,
            disk_lifetime=ExponentialLifetime(1e12),  # rack events only
            replacement_hours=2.0,
            rack_mtbf_hours=1_500.0,
            rack_downtime_hours=4.0,
            rack_kill_fraction=1.0,
            block_size_bytes=64 * MB,
            repair_bandwidth=100 * MB,
        )
        base.update(overrides)
        return ReliabilityConfig(**base)

    def test_rack_spread_survives_concentration_dies(self):
        """A full-rack kill is fatal iff the stripe concentrates there.

        Round-robin piles 6 of RS(4,3)'s 7 blocks into rack 0 (beyond
        the 3-failure tolerance); spread caps every rack at 2 blocks, so
        a single rack event is always survivable.
        """
        code = ReedSolomonCode(4, 3)
        concentrated = _run(code, RoundRobinPlacement(), self._rack_config(), seed=4)
        spread = _run(code, SpreadPlacement(seed=4), self._rack_config(), seed=4)
        assert concentrated.rack_events > 0
        assert concentrated.losses > 0
        assert spread.losses < concentrated.losses
        assert spread.losses == 0

    def test_rack_events_destroy_disks(self):
        r = _run(
            ReedSolomonCode(4, 3), SpreadPlacement(seed=4), self._rack_config(), seed=4
        )
        assert r.rack_events > 0
        assert r.racked_disks_killed > 0
        assert r.disk_failures == r.racked_disks_killed  # no independent deaths
        assert r.repairs_completed > 0

    def test_repair_storm_waits_on_admission(self):
        """A rack kill floods repairs; per-server token caps make the
        storm queue, which the admission controller's wait histogram and
        the queue-depth gauge both witness."""
        r = _run(
            ReedSolomonCode(4, 3),
            SpreadPlacement(seed=4),
            self._rack_config(
                max_inflight_per_server=1, repair_bandwidth=10 * MB, block_size_bytes=GB
            ),
            stripes=30,
            seed=4,
        )
        assert r.max_repair_queue_depth > 1
        assert r.metrics["repair_wait_p99_s"] > 0.0
        assert r.degraded_stripe_hours > 0.0


class TestLatentErrorsAndScrub:
    def test_scrub_detects_and_heals(self):
        config = ReliabilityConfig(
            horizon_years=1.0,
            disk_lifetime=ExponentialLifetime(1e12),
            lse_rate_per_block_hour=3e-4,
            scrub_interval_hours=50.0,
            block_size_bytes=64 * MB,
            repair_bandwidth=100 * MB,
        )
        r = _run(ReedSolomonCode(4, 3), RandomPlacement(seed=3), config, seed=9)
        assert r.lse_injected > 0
        assert r.lse_detected_scrub > 0
        assert r.scrub_scans > 0
        assert r.repairs_completed > 0  # detected latents get rebuilt
        assert r.losses == 0

    def test_repair_reads_discover_latents_without_scrub(self):
        config = ReliabilityConfig(
            horizon_years=1.0,
            disk_lifetime=ExponentialLifetime(700.0),
            replacement_hours=4.0,
            lse_rate_per_block_hour=1e-3,
            scrub_interval_hours=None,
            block_size_bytes=64 * MB,
            repair_bandwidth=100 * MB,
        )
        r = _run(ReedSolomonCode(4, 3), RandomPlacement(seed=3), config, seed=9)
        assert r.lse_injected > 0
        assert r.lse_detected_scrub == 0
        assert r.lse_detected_repair > 0

    def test_unscrubbed_latents_accumulate_into_loss(self):
        """With no scrubbing and no disk churn, latent errors are never
        discovered and silently pile up past the code's tolerance."""
        config = ReliabilityConfig(
            horizon_years=4.0,
            disk_lifetime=ExponentialLifetime(1e12),
            lse_rate_per_block_hour=1e-3,
            scrub_interval_hours=None,
        )
        silent = _run(ReedSolomonCode(4, 3), RandomPlacement(seed=3), config, seed=13)
        scrubbed = _run(
            ReedSolomonCode(4, 3),
            RandomPlacement(seed=3),
            ReliabilityConfig(
                horizon_years=4.0,
                disk_lifetime=ExponentialLifetime(1e12),
                lse_rate_per_block_hour=1e-3,
                scrub_interval_hours=50.0,
                block_size_bytes=64 * MB,
                repair_bandwidth=100 * MB,
            ),
            seed=13,
        )
        assert silent.losses > 0
        assert scrubbed.losses < silent.losses

"""Tests for the resilient read path: backoff, breaker, hedging, timeout."""

import random

import pytest

from repro.cluster import Cluster
from repro.codes import ReedSolomonCode
from repro.faults import FaultModel, VirtualClock
from repro.faults.model import CLEAN, FaultDecision, GraySlowdown, TransientErrors
from repro.storage import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BlockUnavailableError,
    DistributedFileSystem,
    HealthMonitor,
    RetryPolicy,
)
from tests.conftest import payload_bytes


class Burst:
    """Duck-typed fault component firing a decision on the first N reads."""

    def __init__(self, count, decision, servers=None):
        self.count = count
        self.decision = decision
        self.servers = servers

    def applies(self, server_id, now):
        return self.servers is None or server_id in self.servers

    def sample(self, rng, server_id, nbytes, now):
        if self.count <= 0:
            return CLEAN
        self.count -= 1
        return self.decision


def make_env(fault_model=None, policy=None, servers=8):
    cluster = Cluster.homogeneous(servers)
    dfs = DistributedFileSystem(cluster, fault_model=fault_model, retry_policy=policy)
    payload = payload_bytes(6_000, seed=13)
    ef = dfs.write_file("f", payload, code=ReedSolomonCode(4, 2))
    return dfs, ef, payload


class TestBackoffPolicy:
    def test_exponential_capped_without_jitter(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.05, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.backoff(r, rng) for r in range(1, 6)]
        assert delays == pytest.approx([0.01, 0.02, 0.04, 0.05, 0.05])

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.5)
        rng = random.Random(1)
        for r in range(1, 20):
            base = min(policy.max_delay, policy.base_delay * 2 ** (r - 1))
            d = policy.backoff(r, rng)
            assert base <= d <= base * 1.5

    def test_backoff_timing_on_virtual_clock(self):
        """The clock advances by exactly the recorded backoff delays when
        every attempt fails before returning data."""
        dfs, ef, _ = make_env(
            FaultModel(TransientErrors(rate=1.0)), policy=RetryPolicy(max_attempts=4)
        )
        bad = ef.server_of(0)
        with pytest.raises(BlockUnavailableError) as exc:
            dfs.client.get(bad, "f", 0)
        assert exc.value.cause == "retries_exhausted"
        assert len(dfs.client.backoff_history) == 3  # max_attempts - 1
        assert dfs.clock.now == pytest.approx(sum(dfs.client.backoff_history))
        assert dfs.metrics.total("retries") == 3


class TestRetries:
    def test_transient_burst_retried_to_success(self):
        dfs, ef, _ = make_env(FaultModel(Burst(2, FaultDecision(error=True))))
        data = dfs.client.get(ef.server_of(0), "f", 0)
        assert data is not None
        assert dfs.metrics.total("retries") == 2
        assert dfs.metrics.total("transient_read_errors") == 2

    def test_corruption_burst_healed_by_checksum_retry(self):
        dfs, ef, payload = make_env(FaultModel(Burst(1, FaultDecision(corrupt=True))))
        assert dfs.read_file("f") == payload
        assert dfs.metrics.total("checksum_failures") == 1
        assert dfs.metrics.total("retries") == 1

    def test_error_context_fields(self):
        dfs, ef, _ = make_env(FaultModel(TransientErrors(rate=1.0)))
        bad = ef.server_of(1)
        with pytest.raises(BlockUnavailableError) as exc:
            dfs.client.get(bad, "f", 1)
        ctx = exc.value.context()
        assert ctx["server"] == bad
        assert ctx["file"] == "f"
        assert ctx["block"] == 1
        assert ctx["cause"] == "retries_exhausted"
        assert exc.value.__cause__ is not None  # chains the last attempt


class TestTimeouts:
    def test_slow_read_times_out(self):
        policy = RetryPolicy(max_attempts=2, read_timeout=0.1, hedge_threshold=None)
        dfs, ef, _ = make_env(FaultModel(GraySlowdown(extra_latency=0.5)), policy=policy)
        with pytest.raises(BlockUnavailableError) as exc:
            dfs.client.get(ef.server_of(0), "f", 0)
        assert exc.value.cause == "retries_exhausted"
        assert dfs.metrics.total("read_timeouts") == 2

    def test_big_blocks_do_not_spuriously_time_out(self):
        """The deadline applies to *excess* latency, so a block whose clean
        transfer time exceeds read_timeout still succeeds."""
        cluster = Cluster.homogeneous(8)
        dfs = DistributedFileSystem(cluster, retry_policy=RetryPolicy(read_timeout=0.001))
        payload = payload_bytes(2_000_000, seed=3)  # ~0.019s clean transfer
        ef = dfs.write_file("big", payload, code=ReedSolomonCode(4, 2))
        assert dfs.client.get(ef.server_of(0), "big", 0) is not None
        assert dfs.metrics.total("read_timeouts") == 0


class TestCircuitBreaker:
    def test_state_machine_transitions(self):
        clock = VirtualClock()
        health = HealthMonitor(clock, consecutive_limit=3, reset_timeout=1.0)
        for _ in range(3):
            health.record_error(7)
        assert health.state(7) == OPEN
        assert health.is_open(7)
        assert not health.allow_request(7)
        clock.advance(1.5)
        assert not health.is_open(7)  # timeout elapsed: probe allowed
        assert health.allow_request(7)
        assert health.state(7) == HALF_OPEN
        health.record_success(7, 0.01)
        assert health.state(7) == CLOSED
        states = [s for _, sid, s in health.transitions if sid == 7]
        assert states == [OPEN, HALF_OPEN, CLOSED]

    def test_half_open_failure_reopens(self):
        clock = VirtualClock()
        health = HealthMonitor(clock, consecutive_limit=2, reset_timeout=1.0)
        health.record_error(0)
        health.record_error(0)
        clock.advance(2.0)
        assert health.allow_request(0)
        health.record_error(0)
        assert health.state(0) == OPEN
        assert health.is_open(0)

    def test_half_open_admits_single_probe(self):
        clock = VirtualClock()
        health = HealthMonitor(clock, consecutive_limit=1, reset_timeout=1.0)
        health.record_error(0)
        clock.advance(2.0)
        assert health.allow_request(0)  # the probe
        assert not health.allow_request(0)  # concurrent traffic still blocked

    def test_breaker_opens_and_fastfails_reads(self):
        dfs, ef, _ = make_env(FaultModel(TransientErrors(rate=1.0)))
        bad = ef.server_of(0)
        with pytest.raises(BlockUnavailableError):
            dfs.client.get(bad, "f", 0)  # 4 errors > consecutive limit
        assert dfs.health.state(bad) == OPEN
        assert dfs.metrics.total("breaker_opens") == 1
        with pytest.raises(BlockUnavailableError) as exc:
            dfs.client.get(bad, "f", 0)
        assert exc.value.cause == "breaker_open"
        assert dfs.metrics.total("breaker_fastfails") == 1

    def test_breaker_heals_after_fault_window(self):
        model = FaultModel(TransientErrors(rate=1.0, until=0.5))
        dfs, ef, _ = make_env(model)
        bad = ef.server_of(0)
        with pytest.raises(BlockUnavailableError):
            dfs.client.get(bad, "f", 0)
        assert dfs.health.state(bad) == OPEN
        dfs.clock.advance(2.0)  # past the reset timeout and the fault window
        assert dfs.client.get(bad, "f", 0) is not None  # half-open probe wins
        assert dfs.health.state(bad) == CLOSED
        assert dfs.metrics.total("breaker_closes") == 1


class TestHedging:
    def test_hedge_wins_over_one_off_straggler(self):
        policy = RetryPolicy(read_timeout=1.0, hedge_threshold=0.05)
        dfs, ef, payload = make_env(
            FaultModel(Burst(1, FaultDecision(extra_latency=0.3))), policy=policy
        )
        t0 = dfs.clock.now
        data = dfs.client.get(ef.server_of(0), "f", 0)
        assert data is not None
        assert dfs.metrics.total("hedged_reads") == 1
        assert dfs.metrics.total("hedged_wins") == 1
        # The winning completion is ~threshold + clean latency, not 0.3s.
        assert dfs.clock.now - t0 < 0.3

    def test_hedge_loses_against_consistently_gray_server(self):
        """Hedging can't help when the second path is just as slow."""
        policy = RetryPolicy(read_timeout=1.0, hedge_threshold=0.05)
        dfs, ef, _ = make_env(FaultModel(GraySlowdown(extra_latency=0.2)), policy=policy)
        dfs.client.get(ef.server_of(0), "f", 0)
        assert dfs.metrics.total("hedged_reads") == 1
        assert dfs.metrics.total("hedged_wins") == 0

    def test_hedging_disabled(self):
        policy = RetryPolicy(read_timeout=1.0, hedge_threshold=None)
        dfs, ef, _ = make_env(FaultModel(GraySlowdown(extra_latency=0.2)), policy=policy)
        dfs.client.get(ef.server_of(0), "f", 0)
        assert dfs.metrics.total("hedged_reads") == 0


class TestCleanPathEquivalence:
    def test_no_faults_no_resilience_overhead(self):
        dfs, ef, payload = make_env()
        assert dfs.read_file("f") == payload
        for name in ("retries", "hedged_reads", "read_timeouts", "breaker_opens"):
            assert dfs.metrics.total(name) == 0
        assert dfs.health.state(ef.server_of(0)) == CLOSED

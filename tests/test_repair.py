"""Tests for the repair pipeline."""

import pytest

from repro.cluster import Cluster
from repro.codes import PyramidCode, ReedSolomonCode, ReplicationCode
from repro.core import GalloperCode
from repro.storage import DistributedFileSystem, FileSystemError, RepairManager
from tests.conftest import payload_bytes


@pytest.fixture
def setup():
    cluster = Cluster.homogeneous(12)
    dfs = DistributedFileSystem(cluster)
    rm = RepairManager(dfs)
    return cluster, dfs, rm


class TestBlockRepair:
    def test_repair_restores_readability(self, setup):
        cluster, dfs, rm = setup
        payload = payload_bytes(14_000, seed=1)
        ef = dfs.write_file("f", payload, code=GalloperCode(4, 2, 1))
        victim = ef.server_of(1)
        cluster.fail(victim)
        report = rm.repair_block("f", 1)
        assert report.target_server != victim
        assert ef.placement[1] == report.target_server
        cluster.recover(victim)
        dfs.store.drop_server(victim)
        assert dfs.read_file("f") == payload

    def test_local_repair_reads_two_blocks(self, setup):
        cluster, dfs, rm = setup
        ef = dfs.write_file("f", payload_bytes(14_000, seed=2), code=GalloperCode(4, 2, 1))
        block_bytes = ef.block_size
        cluster.fail(ef.server_of(0))
        report = rm.repair_block("f", 0)
        assert len(report.helpers) == 2
        assert report.bytes_read == 2 * block_bytes

    def test_rs_repair_reads_k_blocks(self, setup):
        cluster, dfs, rm = setup
        ef = dfs.write_file("f", payload_bytes(8_000, seed=3), code=ReedSolomonCode(4, 2))
        cluster.fail(ef.server_of(0))
        report = rm.repair_block("f", 0)
        assert len(report.helpers) == 4
        assert report.bytes_read == 4 * ef.block_size

    def test_replication_repair_reads_one(self):
        cluster = Cluster.homogeneous(14)  # 12 replicas + spares
        dfs = DistributedFileSystem(cluster)
        rm = RepairManager(dfs)
        ef = dfs.write_file("f", payload_bytes(4_000, seed=4), code=ReplicationCode(4, 3))
        cluster.fail(ef.server_of(0))
        report = rm.repair_block("f", 0)
        assert len(report.helpers) == 1

    def test_repairing_healthy_block_rejected(self, setup):
        _, dfs, rm = setup
        dfs.write_file("f", payload_bytes(4_000, seed=5), code=ReedSolomonCode(4, 2))
        with pytest.raises(FileSystemError):
            rm.repair_block("f", 0)

    def test_repair_avoids_servers_already_hosting(self, setup):
        cluster, dfs, rm = setup
        ef = dfs.write_file("f", payload_bytes(14_000, seed=6), code=PyramidCode(4, 2, 1))
        used_before = set(ef.placement.values())
        cluster.fail(ef.server_of(3))
        report = rm.repair_block("f", 3)
        assert report.target_server not in used_before - {ef.server_of(3)}

    def test_estimated_time_positive(self, setup):
        cluster, dfs, rm = setup
        ef = dfs.write_file("f", payload_bytes(14_000, seed=7), code=GalloperCode(4, 2, 1))
        cluster.fail(ef.server_of(2))
        assert rm.repair_block("f", 2).estimated_time > 0


class TestServerRepair:
    def test_repair_server_covers_all_files(self, setup):
        cluster, dfs, rm = setup
        p1 = payload_bytes(14_000, seed=8)
        p2 = payload_bytes(7_000, seed=9)
        dfs.write_file("a", p1, code=GalloperCode(4, 2, 1))
        dfs.write_file("b", p2, code=GalloperCode(4, 2, 1))
        cluster.fail(0)
        report = rm.repair_server(0)
        assert report.blocks_rebuilt == 2
        cluster.recover(0)
        dfs.store.drop_server(0)
        assert dfs.read_file("a") == p1
        assert dfs.read_file("b") == p2

    def test_repair_all_sweep(self, setup):
        cluster, dfs, rm = setup
        payload = payload_bytes(14_000, seed=10)
        ef = dfs.write_file("a", payload, code=PyramidCode(4, 2, 1))
        cluster.fail(ef.server_of(0))
        cluster.fail(ef.server_of(5))
        reports = rm.repair_all()
        assert {r.block for r in reports} == {0, 5}

    def test_double_failure_in_group_uses_fallback(self, setup):
        """Both blocks of a group lost: local repair impossible, decode path
        must kick in and still produce correct blocks."""
        cluster, dfs, rm = setup
        payload = payload_bytes(14_000, seed=11)
        ef = dfs.write_file("a", payload, code=GalloperCode(4, 2, 1))
        cluster.fail(ef.server_of(0))
        cluster.fail(ef.server_of(1))
        reports = rm.repair_all()
        assert len(reports) == 2
        # First repair cannot be group-local (its peer is dead too).
        assert len(reports[0].helpers) >= 4
        assert dfs.read_file("a") == payload

    def test_no_spare_server(self):
        cluster = Cluster.homogeneous(7)  # exactly n servers, no spare
        dfs = DistributedFileSystem(cluster)
        rm = RepairManager(dfs)
        ef = dfs.write_file("f", payload_bytes(7_000, seed=12), code=GalloperCode(4, 2, 1))
        cluster.fail(ef.server_of(0))
        with pytest.raises(FileSystemError):
            rm.repair_block("f", 0)


class TestPlanCacheMetrics:
    def test_repeated_same_pattern_repairs_hit_plan_cache(self, setup):
        """A repair storm re-failing the same block reuses the compiled
        plan; the filesystem metric surfaces the cache hits."""
        cluster, dfs, rm = setup
        ef = dfs.write_file("f", payload_bytes(14_000, seed=21), code=GalloperCode(4, 2, 1))
        assert dfs.metrics.total("plan_cache_hits") == 0
        for round_no in range(3):
            victim = ef.server_of(0)
            cluster.fail(victim)
            rm.repair_block("f", 0)
            cluster.recover(victim)
        # First repair compiles the plan, later identical repairs hit it.
        assert dfs.metrics.total("plan_cache_hits") == 2
        assert ef.code.plan_cache_info()["hits"] == 2

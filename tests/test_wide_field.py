"""Wide-field (GF(2^16)) codes — Sec. VI: "For larger values of k, l, g,
we can also increase the size of the finite field."

Every code family accepts an explicit arithmetic context; these tests run
the full pipeline over GF(2^16) and check the automatic field selection
helper.
"""

from itertools import combinations

import numpy as np
import pytest

from repro.codes import PyramidCode, ReedSolomonCode
from repro.core import GalloperCode
from repro.gf import GF65536, field_for_code_width, random_symbols


class TestWideFieldCodes:
    def test_rs_roundtrip(self):
        code = ReedSolomonCode(4, 2, gf=GF65536)
        assert code.gf is GF65536
        data = random_symbols(GF65536, (4, 20), seed=1)
        blocks = code.encode(data)
        assert blocks.dtype == np.uint16
        for ids in combinations(range(6), 4):
            assert np.array_equal(code.decode({b: blocks[b] for b in ids}), data)

    def test_pyramid_tolerance(self):
        code = PyramidCode(4, 2, 1, gf=GF65536)
        data = random_symbols(GF65536, (4, 8), seed=2)
        blocks = code.encode(data)
        for lost in combinations(range(7), 2):
            ids = [b for b in range(7) if b not in lost]
            assert np.array_equal(code.decode({b: blocks[b] for b in ids}), data)

    def test_galloper_construction_and_repair(self):
        code = GalloperCode(4, 2, 1, gf=GF65536)
        assert code.verify_systematic()
        data = random_symbols(GF65536, (code.data_stripe_total, 5), seed=3)
        blocks = code.encode(data)
        for target in range(7):
            avail = {b: blocks[b] for b in range(7) if b != target}
            rebuilt, plan = code.reconstruct(target, avail)
            assert np.array_equal(rebuilt, blocks[target])

    def test_wide_symbols_survive_byte_payloads(self):
        """GF(2^16) symbols are 2 bytes; the filesystem path keeps exact
        byte round-trips through the wide field too."""
        from repro.gf import bytes_to_symbols, symbols_to_bytes

        payload = bytes(range(256)) * 7  # even length
        syms = bytes_to_symbols(GF65536, payload)
        code = ReedSolomonCode(4, 2, gf=GF65536)
        grid = syms[: (syms.size // 4) * 4].reshape(4, -1)
        blocks = code.encode(grid)
        decoded = code.decode({b: blocks[b] for b in (1, 3, 4, 5)})
        assert symbols_to_bytes(GF65536, decoded.reshape(-1)) == payload[: decoded.size * 2]

    def test_large_code_widths_need_wide_field(self):
        """k + r beyond 256 cannot fit GF(2^8) but works in GF(2^16)."""
        from repro.codes.base import ParameterError
        from repro.gf import GF256

        with pytest.raises(ParameterError):
            ReedSolomonCode(250, 10, gf=GF256)
        wide = ReedSolomonCode(250, 10, gf=GF65536)
        assert wide.n == 260
        # Spot-check decodability: drop ten blocks, decode from the rest.
        assert wide.can_decode([b for b in range(260) if b >= 10])

    def test_field_selector(self):
        assert field_for_code_width(10).q == 8
        assert field_for_code_width(255).q == 8
        assert field_for_code_width(256).q == 16

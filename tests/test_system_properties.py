"""System-level property-based tests (hypothesis).

These drive randomized payload sizes, failure patterns, corruption
offsets and split tilings through the storage stack, asserting the
end-to-end invariants: byte-exact reads, records processed exactly once,
corruption always healed.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.codes import CarouselCode, PyramidCode, ReedSolomonCode
from repro.core import GalloperCode
from repro.mapreduce import LineRecordReader
from repro.storage import DistributedFileSystem, RepairManager, Scrubber
from repro.storage.striped import StripedFileSystem

CODE_FACTORIES = {
    "rs": lambda: ReedSolomonCode(4, 2),
    "pyramid": lambda: PyramidCode(4, 2, 1),
    "galloper": lambda: GalloperCode(4, 2, 1),
    "carousel": lambda: CarouselCode(4, 2),
}

settings_kwargs = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _payload(seed: int, size: int) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


class TestStorageRoundtrip:
    @settings(**settings_kwargs)
    @given(
        code_name=st.sampled_from(sorted(CODE_FACTORIES)),
        size=st.integers(min_value=1, max_value=50_000),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_write_read_exact(self, code_name, size, seed):
        dfs = DistributedFileSystem(Cluster.homogeneous(10))
        payload = _payload(seed, size)
        dfs.write_file("f", payload, code=CODE_FACTORIES[code_name]())
        assert dfs.read_file("f") == payload

    @settings(**settings_kwargs)
    @given(
        code_name=st.sampled_from(["pyramid", "galloper"]),
        size=st.integers(min_value=100, max_value=30_000),
        failures=st.sets(st.integers(min_value=0, max_value=6), min_size=1, max_size=2),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_degraded_read_exact_within_tolerance(self, code_name, size, failures, seed):
        dfs = DistributedFileSystem(Cluster.homogeneous(10))
        payload = _payload(seed, size)
        ef = dfs.write_file("f", payload, code=CODE_FACTORIES[code_name]())
        for b in failures:
            dfs.cluster.fail(ef.server_of(b))
        assert dfs.read_file("f") == payload

    @settings(**settings_kwargs)
    @given(
        offset=st.integers(min_value=0, max_value=30_000),
        length=st.integers(min_value=0, max_value=30_000),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_extent_reads_match_slicing(self, offset, length, seed):
        dfs = DistributedFileSystem(Cluster.homogeneous(10))
        payload = _payload(seed, 20_000)
        dfs.write_file("f", payload, code=GalloperCode(4, 2, 1))
        assert dfs.read_bytes("f", offset, length) == payload[offset : offset + length]


class TestRepairProperties:
    @settings(**settings_kwargs)
    @given(
        victim_block=st.integers(min_value=0, max_value=6),
        size=st.integers(min_value=100, max_value=20_000),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_repair_restores_exact_block(self, victim_block, size, seed):
        dfs = DistributedFileSystem(Cluster.homogeneous(10))
        payload = _payload(seed, size)
        ef = dfs.write_file("f", payload, code=GalloperCode(4, 2, 1))
        victim_server = ef.server_of(victim_block)
        before = dfs.store.get(victim_server, "f", victim_block).copy()
        dfs.cluster.fail(victim_server)
        report = RepairManager(dfs).repair_block("f", victim_block)
        after = dfs.store.get(report.target_server, "f", victim_block)
        assert np.array_equal(before, after)

    @settings(**settings_kwargs)
    @given(
        block=st.integers(min_value=0, max_value=6),
        offset=st.integers(min_value=0, max_value=1 << 20),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_scrub_always_heals(self, block, offset, seed):
        dfs = DistributedFileSystem(Cluster.homogeneous(10))
        payload = _payload(seed, 14_000)
        ef = dfs.write_file("f", payload, code=GalloperCode(4, 2, 1))
        dfs.store.corrupt(ef.server_of(block), "f", block, offset=offset)
        report = Scrubber(dfs).scrub()
        assert report.corrupted == [("f", block)]
        assert dfs.read_file("f") == payload
        assert Scrubber(dfs).scrub(heal=False).healthy


class TestRecordTiling:
    @settings(**settings_kwargs)
    @given(
        cuts=st.lists(st.integers(min_value=1, max_value=4_999), min_size=0, max_size=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_lines_processed_exactly_once(self, cuts, seed):
        from repro.mapreduce.workloads import generate_text

        text = generate_text(5_000, seed=seed)
        dfs = DistributedFileSystem(Cluster.homogeneous(10))
        dfs.write_file("f", text, code=GalloperCode(4, 2, 1))
        boundaries = sorted(set(cuts)) + [len(text)]
        start = 0
        reader = LineRecordReader()
        collected: list[bytes] = []
        for end in boundaries:
            if end <= start:
                continue
            collected.extend(reader.records(dfs, "f", start, end))
            start = end
        assert collected == text.split(b"\n")


class TestStripedProperties:
    @settings(**settings_kwargs)
    @given(
        size=st.integers(min_value=1, max_value=120_000),
        cap=st.sampled_from([4_096, 8_192, 16_384]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_striped_roundtrip(self, size, cap, seed):
        sfs = StripedFileSystem(DistributedFileSystem(Cluster.homogeneous(30)))
        payload = _payload(seed, size)
        meta = sfs.write_file("f", payload, lambda: GalloperCode(4, 2, 1), max_block_bytes=cap)
        assert sfs.read_file("f") == payload
        for g in meta.group_names():
            assert sfs.dfs.file(g).block_size <= cap

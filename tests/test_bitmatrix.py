"""Property tests for the XOR-schedule kernel tier.

Covers the three layers of the tier:

* :mod:`repro.gf.bitmatrix` — companion-matrix expansion agrees with the
  field's own multiplication, and the vectorised doubling primitive
  matches scalar ``gf.mul(2, x)``.
* :mod:`repro.gf.schedule` — compiled ``XorSchedule``s are byte-exact
  against :func:`mat_data_product_reference` for random coefficient
  matrices over both fields, including ragged widths that exercise the
  chunked executor's tail path.
* :class:`repro.gf.kernels.CodingPlan` integration — forced-``xor``
  plans equal forced-``table`` plans (apply and ragged ``apply_batch``),
  auto mode picks the schedule only where the cost model says it wins,
  the ``REPRO_KERNEL`` knob and plan-cache keys interact safely, and the
  selection counters/`validate_symbols` diagnostics behave.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import PyramidCode, ReedSolomonCode
from repro.core import GalloperCode
from repro.gf import (
    GF256,
    GF65536,
    CodingPlan,
    GFError,
    XorSchedule,
    bitmatrix_density,
    coeff_bitmatrix,
    companion_matrix,
    current_kernel_choice,
    double_symbols,
    kernel_selection_info,
    lane_selection_matrix,
    mat_data_product_reference,
    native_available,
    predicted_win,
    reset_kernel_selection,
    validate_symbols,
)

# REPRO_KERNEL knob tests and the selection counters touch process-global
# kernel state; share an xdist serial group with tests/test_native.py.
pytestmark = pytest.mark.xdist_group("kernel-global-state")

FIELDS = {"gf256": GF256, "gf65536": GF65536}


def _auto(label: str) -> str:
    """The label auto mode reports for a numpy-tier structure.

    With a native backend in the process, auto plans keep the same
    xor-vs-table structure decision but execute (and label) natively.
    """
    if not native_available():
        return label
    return {"xor": "native-xor", "packed-full": "native", "packed-split": "native"}[label]


def _random(gf, shape, seed):
    return np.random.default_rng(seed).integers(0, gf.size, shape).astype(gf.dtype)


def _bits(gf, x):
    return np.array([(x >> i) & 1 for i in range(gf.q)], dtype=np.uint8)


# ---------------------------------------------------------------- bitmatrix


class TestBitmatrix:
    @pytest.mark.parametrize("field", FIELDS, ids=FIELDS.keys())
    @given(c=st.integers(0, 255), x=st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_companion_matrix_is_multiplication(self, field, c, x):
        gf = FIELDS[field]
        got = companion_matrix(gf, c) @ _bits(gf, x) % 2
        assert np.array_equal(got, _bits(gf, gf.mul(c, x)))

    def test_companion_matrix_gf16_high_symbols(self):
        gf = GF65536
        for c, x in [(0x100A, 0xFFFF), (0x8001, 0x8000), (65535, 65535)]:
            got = companion_matrix(gf, c) @ _bits(gf, x) % 2
            assert np.array_equal(got, _bits(gf, gf.mul(c, x)))

    def test_companion_rejects_out_of_field(self):
        with pytest.raises(GFError):
            companion_matrix(GF256, 256)

    def test_coeff_bitmatrix_blocks(self):
        gf = GF256
        coeffs = np.array([[3, 0], [1, 7]], dtype=np.uint8)
        bm = coeff_bitmatrix(gf, coeffs)
        assert bm.shape == (16, 16)
        assert np.array_equal(bm[:8, :8], companion_matrix(gf, 3))
        assert not bm[:8, 8:].any()  # zero coefficient -> zero block
        assert np.array_equal(bm[8:, :8], np.eye(8, dtype=np.uint8))

    def test_density_identity_vs_dense(self):
        gf = GF256
        assert bitmatrix_density(gf, np.ones((1, 4), dtype=np.uint8)) == pytest.approx(
            4 * 8 / (8 * 32)
        )
        dense = _random(gf, (4, 6), seed=3) | 1
        assert bitmatrix_density(gf, dense) > 0.3

    def test_lane_selection_matrix_is_coefficient_bits(self):
        gf = GF256
        coeffs = np.array([[0x15, 2]], dtype=np.uint8)
        sel = lane_selection_matrix(gf, coeffs)
        assert sel.shape == (1, 16)
        assert list(np.nonzero(sel[0])[0]) == [0, 2, 4, 8 + 1]

    @pytest.mark.parametrize("field", FIELDS, ids=FIELDS.keys())
    @pytest.mark.parametrize("size", [8, 1000, 4096 + 3])
    def test_double_symbols_matches_scalar(self, field, size):
        gf = FIELDS[field]
        src = _random(gf, size, seed=size)
        dst, tmp = np.empty_like(src), np.empty_like(src)
        double_symbols(gf, src, dst, tmp)
        want = np.array([gf.mul(2, int(v)) for v in src], dtype=gf.dtype)
        assert np.array_equal(dst, want)

    def test_double_symbols_in_place(self):
        gf = GF256
        src = _random(gf, 4096, seed=9)
        want = np.array([gf.mul(2, int(v)) for v in src], dtype=gf.dtype)
        tmp = np.empty_like(src)
        double_symbols(gf, src, src, tmp)
        assert np.array_equal(src, want)


# ----------------------------------------------------------------- schedule


class TestXorSchedule:
    @pytest.mark.parametrize("field", FIELDS, ids=FIELDS.keys())
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_matrices_match_reference(self, field, data):
        gf = FIELDS[field]
        m = data.draw(st.integers(1, 6))
        n = data.draw(st.integers(1, 8))
        seed = data.draw(st.integers(0, 2**16))
        rng = np.random.default_rng(seed)
        coeffs = rng.integers(0, gf.size, (m, n)).astype(gf.dtype)
        payload = rng.integers(0, gf.size, (n, 1536)).astype(gf.dtype)
        sched = XorSchedule.compile(gf, coeffs)
        out = np.zeros((m, payload.shape[1]), dtype=gf.dtype)
        sched.execute(payload, np.arange(n), np.arange(m), out)
        assert np.array_equal(out, mat_data_product_reference(gf, coeffs, payload))

    @pytest.mark.parametrize("field", FIELDS, ids=FIELDS.keys())
    @pytest.mark.parametrize("width", [1, 7, 1024, 1031, 200_003])
    def test_ragged_widths(self, field, width):
        # Odd widths hit the executor's non-word-aligned tail handling;
        # 200_003 forces multiple pool chunks for laddered schedules.
        gf = FIELDS[field]
        coeffs = _random(gf, (3, 5), seed=11)
        payload = _random(gf, (5, width), seed=13)
        sched = XorSchedule.compile(gf, coeffs)
        out = np.zeros((3, width), dtype=gf.dtype)
        sched.execute(payload, np.arange(5), np.arange(3), out)
        assert np.array_equal(out, mat_data_product_reference(gf, coeffs, payload))

    def test_cse_reduces_dense_xor_count(self):
        sched = XorSchedule.compile(GF256, _random(GF256, (6, 8), seed=17) | 1)
        assert sched.stats["xors"] < sched.stats["raw_xors"]
        assert sched.stats["saved"] == sched.stats["raw_xors"] - sched.stats["xors"]

    def test_all_ones_schedule_is_pure_xor(self):
        sched = XorSchedule.compile(GF256, np.ones((1, 10), dtype=np.uint8))
        assert sched.stats["ladder_steps"] == 0
        assert sched.stats["lanes"] == 0  # every lane is a zero-copy data view
        assert sched.stats["xors"] == 9
        assert sched.wins

    def test_predicted_win_accepts_parity_rejects_cauchy(self):
        assert predicted_win(GF256, np.ones((1, 10), dtype=np.uint8))
        rs = ReedSolomonCode(6, 4)
        parity = rs.generator[6:]
        assert not predicted_win(rs.gf, parity)
        # Same over GF(2^16): the 16-step ladders alone dwarf the tables.
        rs16 = ReedSolomonCode(6, 4, gf=GF65536)
        assert not predicted_win(rs16.gf, rs16.generator[6:])

    def test_zero_row_outputs_zero(self):
        gf = GF256
        coeffs = np.array([[0, 0], [1, 2]], dtype=np.uint8)
        payload = _random(gf, (2, 2048), seed=19)
        sched = XorSchedule.compile(gf, coeffs)
        out = np.ones((2, 2048), dtype=gf.dtype)
        sched.execute(payload, np.arange(2), np.arange(2), out)
        assert not out[0].any()
        assert np.array_equal(out, mat_data_product_reference(gf, coeffs, payload))


# ---------------------------------------------------- CodingPlan integration


LARGE = 4096  # comfortably above SMALL_PRODUCT_ELEMS


class TestCodingPlanXor:
    @pytest.mark.parametrize("field", FIELDS, ids=FIELDS.keys())
    def test_forced_tiers_agree_on_random_matrices(self, field):
        gf = FIELDS[field]
        for seed, (m, n) in enumerate([(1, 10), (3, 4), (7, 14), (4, 6)]):
            coeffs = _random(gf, (m, n), seed=seed)
            payload = _random(gf, (n, LARGE), seed=100 + seed)
            want = CodingPlan(gf, coeffs, kernel="table").apply(payload)
            got = CodingPlan(gf, coeffs, kernel="xor").apply(payload)
            assert np.array_equal(want, got)
            assert np.array_equal(want, mat_data_product_reference(gf, coeffs, payload))

    def test_apply_batch_ragged_segments(self):
        gf = GF256
        coeffs = np.ones((2, 6), dtype=np.uint8)
        coeffs[1] = [1, 2, 4, 8, 16, 32]
        segs = [_random(gf, (6, s), seed=s) for s in (900, 1024, 37, 5000)]
        xor_views = CodingPlan(gf, coeffs, kernel="xor").apply_batch(segs)
        tab_views = CodingPlan(gf, coeffs, kernel="table").apply_batch(segs)
        for x, t, seg in zip(xor_views, tab_views, segs):
            assert x.shape == (2, seg.shape[1])
            assert np.array_equal(x, t)

    def test_auto_selects_xor_for_parity_and_table_for_cauchy(self):
        rs = ReedSolomonCode(10, 1)
        assert CodingPlan(rs.gf, rs.generator).kernel == _auto("xor")
        gal = GalloperCode(4, 2, 1)
        assert CodingPlan(gal.gf, gal.generator).kernel == _auto("packed-full")

    @pytest.mark.parametrize(
        "factory", [lambda: GalloperCode(4, 2, 1), lambda: PyramidCode(4, 2, 1)]
    )
    def test_local_repair_plans_choose_xor_and_reconstruct(self, factory):
        code = factory()
        target = 0
        rp = code.repair_plan(target)
        plan = code.compile_reconstruct(target, rp.helpers)
        assert plan.kernel == _auto("xor")
        data = _random(code.gf, (code.data_stripe_total, LARGE), seed=7)
        blocks = code.encode(data)
        avail = {b: blocks[b] for b in range(code.n) if b != target}
        rebuilt, _ = code.reconstruct(target, avail, rp)
        assert np.array_equal(rebuilt, blocks[target])

    def test_single_block_reconstruct_plan_byte_exact(self):
        code = GalloperCode(4, 2, 1)
        rp = code.repair_plan(2)
        plan = code.compile_reconstruct(2, rp.helpers)
        payload = _random(code.gf, (plan.n, LARGE), seed=23)
        forced = CodingPlan(code.gf, plan.coeffs, kernel="table").apply(payload)
        assert np.array_equal(plan.apply(payload), forced)

    def test_invalid_kernel_rejected(self):
        with pytest.raises(GFError):
            CodingPlan(GF256, np.eye(2, dtype=np.uint8), kernel="simd")

    def test_forced_xor_small_product_uses_direct_path(self):
        # Below SMALL_PRODUCT_ELEMS even a forced-xor plan takes the
        # log/antilog path — but stays byte-exact.
        gf = GF256
        coeffs = _random(gf, (2, 3), seed=29)
        payload = _random(gf, (3, 64), seed=31)
        want = mat_data_product_reference(gf, coeffs, payload)
        assert np.array_equal(CodingPlan(gf, coeffs, kernel="xor").apply(payload), want)


class TestKernelKnobAndCache:
    def test_env_knob_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "table")
        assert current_kernel_choice() == "table"
        monkeypatch.setenv("REPRO_KERNEL", "turbo")
        with pytest.raises(GFError):
            current_kernel_choice()
        monkeypatch.delenv("REPRO_KERNEL")
        assert current_kernel_choice() == "auto"

    def test_plan_cache_keys_include_kernel_choice(self, monkeypatch):
        code = ReedSolomonCode(10, 1)
        monkeypatch.setenv("REPRO_KERNEL", "table")
        table_plan = code.compile_encode()
        assert table_plan.kernel != "xor"
        monkeypatch.setenv("REPRO_KERNEL", "xor")
        xor_plan = code.compile_encode()
        assert xor_plan is not table_plan
        assert xor_plan.kernel == "xor"
        # Same knob value -> same cached plan object.
        assert code.compile_encode() is xor_plan
        monkeypatch.setenv("REPRO_KERNEL", "table")
        assert code.compile_encode() is table_plan

    def test_reconstruct_cache_keyed_by_choice(self, monkeypatch):
        code = GalloperCode(4, 2, 1)
        helpers = code.repair_plan(0).helpers
        monkeypatch.setenv("REPRO_KERNEL", "table")
        p_table = code.compile_reconstruct(0, helpers)
        monkeypatch.setenv("REPRO_KERNEL", "auto")
        p_auto = code.compile_reconstruct(0, helpers)
        assert p_auto is not p_table
        assert p_table.kernel.startswith("packed")
        assert p_auto.kernel == _auto("xor")

    def test_clear_plan_cache_drops_encode_plans(self, monkeypatch):
        code = ReedSolomonCode(4, 2)
        plan = code.compile_encode()
        code.clear_plan_cache()
        assert code.compile_encode() is not plan


class TestSelectionCounters:
    def test_counters_count_first_large_apply(self):
        reset_kernel_selection()
        gf = GF256
        xor_plan = CodingPlan(gf, np.ones((1, 10), dtype=np.uint8))
        payload = _random(gf, (10, LARGE), seed=37)
        xor_plan.apply(payload)
        xor_plan.apply(payload)  # counted once, not per apply
        dense = CodingPlan(gf, _random(gf, (4, 6), seed=41) | 1)
        dense.apply(_random(gf, (6, LARGE), seed=43))
        counts = kernel_selection_info()
        assert counts[_auto("xor")] == 1
        assert counts[_auto("packed-full")] == 1

    def test_fallback_counter(self):
        # A shape that passes the optimistic pre-screen but loses after
        # CSE: force it by compiling with auto on a matrix whose raw
        # density is borderline.  Forced-xor never counts as a fallback.
        reset_kernel_selection()
        gf = GF256
        forced = CodingPlan(gf, _random(gf, (4, 6), seed=47) | 1, kernel="xor")
        forced.apply(_random(gf, (6, LARGE), seed=53))
        counts = kernel_selection_info()
        assert counts["xor"] == 1
        assert counts["xor_fallbacks"] == 0

    def test_reset(self):
        reset_kernel_selection()
        assert all(v == 0 for v in kernel_selection_info().values())


class TestValidateSymbolsDiagnostics:
    def test_error_names_dtype_and_field(self):
        bad = np.array([0, 300], dtype=np.int32)
        with pytest.raises(GFError) as exc:
            validate_symbols(GF256, bad, "data")
        msg = str(exc.value)
        assert "int32" in msg
        assert "300" in msg
        assert "255" in msg  # the field maximum
        assert "GF(2^8)" in msg

    def test_uint16_data_against_gf256_plan(self):
        wide = np.array([[1000]], dtype=np.uint16)
        with pytest.raises(GFError) as exc:
            validate_symbols(GF256, wide, "data")
        assert "uint16" in str(exc.value)
        assert "16-bit" in str(exc.value)

    def test_in_range_passes_unchanged(self):
        ok = np.array([0, 255], dtype=np.uint16)
        out = validate_symbols(GF256, ok, "data")
        assert out.dtype == GF256.dtype

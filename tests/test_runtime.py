"""Tests for the MapReduce runtime: timing model and real execution."""

import pytest

from repro.cluster import Cluster
from repro.codes import PyramidCode
from repro.core import GalloperCode
from repro.mapreduce import (
    CostModel,
    DataBlockInputFormat,
    GalloperInputFormat,
    MapReduceRuntime,
)
from repro.mapreduce.workloads import (
    generate_text,
    grep_job,
    grep_reference,
    wordcount_job,
    wordcount_reference,
)
from repro.storage import DistributedFileSystem


@pytest.fixture
def env():
    cluster = Cluster.homogeneous(10)
    dfs = DistributedFileSystem(cluster)
    text = generate_text(60_000, seed=1)
    dfs.write_file("text", text, code=GalloperCode(4, 2, 1))
    dfs.write_file("text-pyr", text, code=PyramidCode(4, 2, 1))
    return cluster, dfs, text


class TestRealExecution:
    def test_wordcount_matches_reference(self, env):
        _, dfs, text = env
        rt = MapReduceRuntime(dfs)
        res = rt.run(wordcount_job("text"), GalloperInputFormat())
        assert res.output == wordcount_reference(text)

    def test_output_independent_of_input_format(self, env):
        _, dfs, text = env
        rt = MapReduceRuntime(dfs)
        a = rt.run(wordcount_job("text"), GalloperInputFormat())
        b = rt.run(wordcount_job("text-pyr"), DataBlockInputFormat())
        assert a.output == b.output

    def test_output_independent_of_reducer_count(self, env):
        _, dfs, text = env
        rt = MapReduceRuntime(dfs)
        a = rt.run(wordcount_job("text", num_reducers=1), GalloperInputFormat())
        b = rt.run(wordcount_job("text", num_reducers=7), GalloperInputFormat())
        assert a.output == b.output

    def test_grep(self, env):
        _, dfs, text = env
        rt = MapReduceRuntime(dfs)
        res = rt.run(grep_job("text", "stripe"), GalloperInputFormat())
        assert res.output["stripe"] == grep_reference(text, "stripe")

    def test_sub_split_execution_still_exact(self, env):
        _, dfs, text = env
        rt = MapReduceRuntime(dfs)
        res = rt.run(wordcount_job("text"), GalloperInputFormat(max_split_bytes=2000))
        assert res.output == wordcount_reference(text)


class TestTimingModel:
    def test_galloper_fans_out_wider(self, env):
        _, dfs, _ = env
        rt = MapReduceRuntime(dfs, execute=False)
        g = rt.run(wordcount_job("text"), GalloperInputFormat())
        p = rt.run(wordcount_job("text-pyr"), DataBlockInputFormat())
        assert len(g.map_servers()) == 7
        assert len(p.map_servers()) == 4
        assert g.num_map_tasks == 7
        assert p.num_map_tasks == 4

    def test_map_durations_scale_with_split_size(self):
        cluster = Cluster.homogeneous(10)
        dfs = DistributedFileSystem(cluster)
        dfs.write_virtual_file("big", 400 << 20, code=PyramidCode(4, 2, 1))
        rt = MapReduceRuntime(dfs, execute=False)
        res = rt.run(wordcount_job("big"), DataBlockInputFormat())
        durations = [t.duration for t in res.tasks if t.kind == "map"]
        assert all(d > 1.0 for d in durations)
        expected = 1.0 + (100 << 20) / (10 << 20)  # overhead + bytes/rate
        assert durations[0] == pytest.approx(expected, rel=0.01)

    def test_cpu_speed_slows_tasks(self):
        cluster = Cluster.heterogeneous([1.0, 1.0, 1.0, 1.0, 0.5, 1.0, 1.0])
        dfs = DistributedFileSystem(cluster)
        dfs.write_virtual_file("v", 4 << 20, code=GalloperCode(4, 2, 1))
        rt = MapReduceRuntime(dfs, execute=False)
        res = rt.run(wordcount_job("v"), GalloperInputFormat())
        by_server = res.map_times_by_server()
        assert by_server[4][0] > by_server[0][0]

    def test_job_time_is_phase_sum(self, env):
        _, dfs, _ = env
        rt = MapReduceRuntime(dfs, execute=False)
        res = rt.run(wordcount_job("text"), GalloperInputFormat())
        assert res.job_time == pytest.approx(
            res.map_phase_time + res.shuffle_time + res.reduce_phase_time
        )

    def test_reduce_tasks_recorded(self, env):
        _, dfs, _ = env
        rt = MapReduceRuntime(dfs, execute=False)
        res = rt.run(wordcount_job("text", num_reducers=3), GalloperInputFormat())
        assert sum(1 for t in res.tasks if t.kind == "reduce") == 3

    def test_cost_model_override(self, env):
        _, dfs, _ = env
        slow = MapReduceRuntime(dfs, cost=CostModel(map_rate=1 << 20), execute=False)
        fast = MapReduceRuntime(dfs, cost=CostModel(map_rate=100 << 20), execute=False)
        s = slow.run(wordcount_job("text"), GalloperInputFormat())
        f = fast.run(wordcount_job("text"), GalloperInputFormat())
        assert s.map_phase_time > f.map_phase_time

    def test_no_splits_raises(self, env):
        _, dfs, _ = env
        rt = MapReduceRuntime(dfs)
        with pytest.raises(Exception):
            rt.run(wordcount_job("nonexistent"), GalloperInputFormat())

    def test_deterministic_timings(self, env):
        _, dfs, _ = env
        rt = MapReduceRuntime(dfs, execute=False)
        a = rt.run(wordcount_job("text"), GalloperInputFormat())
        b = rt.run(wordcount_job("text"), GalloperInputFormat())
        assert a.job_time == b.job_time
        assert [t.finish for t in a.tasks] == [t.finish for t in b.tasks]

"""Equivalence tests: Galloper preserves the Pyramid code's guarantees.

The paper proves (Sec. V-A) that a (k, l, g) Galloper code keeps exactly
the Pyramid code's *guaranteed* structure: the first ``k + l`` blocks are
reconstructible from their ``k/l`` group peers, the global parities from
``k`` blocks, and any ``g + 1`` erasures are decodable.  Beyond-tolerance
erasure patterns (``g + 2`` and up) are pattern-dependent for both codes
and are *not* claimed to coincide — ``test_beyond_tolerance_documented``
pins the one known divergence so a regression is visible.
"""

from itertools import combinations

import pytest

from repro.codes import CarouselCode, PyramidCode, ReedSolomonCode
from repro.core import GalloperCode
from repro.gf import rank, rows_in_rowspace


def all_subsets(n, size):
    return combinations(range(n), size)


@pytest.mark.parametrize("k,l,g", [(4, 2, 1), (6, 2, 2), (6, 3, 1)])
class TestGuaranteedTolerance:
    def test_equivalent_up_to_g_plus_1_failures(self, k, l, g):
        """Both codes decode every pattern within guaranteed tolerance."""
        pyramid = PyramidCode(k, l, g)
        galloper = GalloperCode(k, l, g)
        n = pyramid.n
        for failures in range(1, g + 2):
            for lost in all_subsets(n, failures):
                ids = [b for b in range(n) if b not in lost]
                assert pyramid.can_decode(ids), lost
                assert galloper.can_decode(ids), lost

    def test_group_locality_preserved(self, k, l, g):
        """Every grouped block lies in its peers' rowspace in both codes."""
        pyramid = PyramidCode(k, l, g)
        galloper = GalloperCode(k, l, g)
        for code in (pyramid, galloper):
            for b in range(code.n):
                if code.structure.role_of(b) == "global_parity":
                    continue
                group = code.structure.group_of(b)
                helpers = [m for m in code.structure.group_members(group) if m != b]
                assert rows_in_rowspace(
                    code.gf, code.generator[code.block_rows(b)], code.rows_for_blocks(helpers)
                ), (code.name, b)

    def test_repair_plan_costs_match(self, k, l, g):
        pyramid = PyramidCode(k, l, g)
        galloper = GalloperCode(k, l, g)
        for b in range(pyramid.n):
            assert (
                pyramid.repair_plan(b).blocks_read == galloper.repair_plan(b).blocks_read
            ), b

    def test_global_parity_rebuilds_from_k_data_role_blocks(self, k, l, g):
        """Sec. V-A: 'the last g blocks can be reconstructed from other k
        blocks' — specifically the k data-role blocks."""
        galloper = GalloperCode(k, l, g)
        data_blocks = galloper.structure.data_blocks()
        for gp in galloper.structure.global_parity_blocks():
            assert rows_in_rowspace(
                galloper.gf,
                galloper.generator[galloper.block_rows(gp)],
                galloper.rows_for_blocks(data_blocks),
            ), gp


class TestBeyondTolerance:
    def test_4_2_1_matches_pyramid_everywhere(self):
        """For the paper's running example the match happens to be exact,
        including beyond-tolerance patterns."""
        pyramid = PyramidCode(4, 2, 1)
        galloper = GalloperCode(4, 2, 1)
        for failures in range(1, 5):
            for lost in all_subsets(7, failures):
                ids = [b for b in range(7) if b not in lost]
                assert pyramid.can_decode(ids) == galloper.can_decode(ids), lost

    def test_paper_counterexample_fails_for_both(self):
        """Losing A, B and the global parity defeats both codes."""
        assert not PyramidCode(4, 2, 1).can_decode([2, 3, 4, 5])
        assert not GalloperCode(4, 2, 1).can_decode([2, 3, 4, 5])

    def test_beyond_tolerance_documented_divergence(self):
        """(6,2,2): one 4-failure pattern decodes under Pyramid but not
        under Galloper.  This is allowed — the guarantee stops at g+1
        failures — and pinned here so construction changes surface."""
        pyramid = PyramidCode(6, 2, 2)
        galloper = GalloperCode(6, 2, 2)
        survivors = [1, 3, 5, 6, 8, 9]  # lost {0, 2, 4, 7}
        assert pyramid.can_decode(survivors)
        assert not galloper.can_decode(survivors)
        # ... and it is the *only* divergence at up to g+2 failures.
        diffs = 0
        for failures in range(1, 5):
            for lost in all_subsets(10, failures):
                ids = [b for b in range(10) if b not in lost]
                if pyramid.can_decode(ids) != galloper.can_decode(ids):
                    diffs += 1
        assert diffs == 1


class TestRankEquivalence:
    def test_per_block_subset_ranks_4_2_1(self):
        """rank(rows of any block subset) matches Pyramid (x N) for the
        running example."""
        pyramid = PyramidCode(4, 2, 1)
        galloper = GalloperCode(4, 2, 1)
        N = galloper.N
        for size in (1, 2, 3, 4, 5):
            for subset in all_subsets(7, size):
                pr = rank(pyramid.gf, pyramid.rows_for_blocks(subset))
                gr = rank(galloper.gf, galloper.rows_for_blocks(subset))
                assert gr == pr * N, subset

    def test_special_case_is_exactly_equivalent(self):
        """For l = 0 the construction is a pure basis change, so *every*
        pattern matches the source Reed-Solomon code."""
        rs = ReedSolomonCode(4, 2)
        galloper = GalloperCode(4, 0, 2)
        for failures in range(1, 4):
            for lost in all_subsets(6, failures):
                ids = [b for b in range(6) if b not in lost]
                assert rs.can_decode(ids) == galloper.can_decode(ids), lost


class TestCarouselIsUniformGalloper:
    def test_carousel_equals_uniform_weights(self):
        carousel = CarouselCode(4, 2)
        rs = ReedSolomonCode(4, 2)
        for ids in all_subsets(6, 4):
            assert carousel.can_decode(list(ids)) == rs.can_decode(list(ids))

    def test_carousel_repair_cost_is_rs_like(self):
        carousel = CarouselCode(4, 2)
        for b in range(6):
            assert carousel.repair_plan(b).blocks_read == 4

    def test_carousel_spreads_evenly(self):
        carousel = CarouselCode(4, 2)
        fractions = {i.data_fraction for i in carousel.block_infos}
        assert fractions == {4 / 6}

"""Tests for record readers: Hadoop split-boundary semantics.

The crucial invariant: however the file is tiled into splits, every record
is produced by exactly one split.
"""

import pytest

from repro.cluster import Cluster
from repro.codes import ReedSolomonCode
from repro.core import GalloperCode
from repro.mapreduce import FixedLengthRecordReader, LineRecordReader, WholeSplitReader
from repro.storage import DistributedFileSystem


def make_dfs(payload: bytes, code=None):
    dfs = DistributedFileSystem(Cluster.homogeneous(10))
    dfs.write_file("f", payload, code=code or GalloperCode(4, 2, 1))
    return dfs


def collect(reader, dfs, splits):
    out = []
    for start, end in splits:
        out.extend(reader.records(dfs, "f", start, end))
    return out


class TestLineRecords:
    PAYLOAD = b"alpha beta\ngamma\n\ndelta epsilon zeta\neta\ntheta"

    def test_whole_file_single_split(self):
        dfs = make_dfs(self.PAYLOAD)
        lines = list(LineRecordReader().records(dfs, "f", 0, len(self.PAYLOAD)))
        assert lines == self.PAYLOAD.split(b"\n")

    @pytest.mark.parametrize("cut", range(1, 45))
    def test_two_splits_tile_exactly(self, cut):
        dfs = make_dfs(self.PAYLOAD)
        n = len(self.PAYLOAD)
        lines = collect(LineRecordReader(), dfs, [(0, cut), (cut, n)])
        assert lines == self.PAYLOAD.split(b"\n"), cut

    def test_three_way_tiling(self):
        dfs = make_dfs(self.PAYLOAD)
        n = len(self.PAYLOAD)
        for a in (5, 11, 17):
            for b in (23, 30, 40):
                lines = collect(LineRecordReader(), dfs, [(0, a), (a, b), (b, n)])
                assert lines == self.PAYLOAD.split(b"\n"), (a, b)

    def test_split_on_newline_boundary(self):
        payload = b"aa\nbb\ncc\n"
        dfs = make_dfs(payload)
        # Cut exactly after a newline (offset 3): line 'bb' starts at 3,
        # which belongs to the first split under Hadoop semantics.
        lines = collect(LineRecordReader(), dfs, [(0, 3), (3, len(payload))])
        assert lines == [b"aa", b"bb", b"cc"]

    def test_trailing_unterminated_line(self):
        payload = b"one\ntwo\nthree-without-newline"
        dfs = make_dfs(payload)
        lines = collect(LineRecordReader(), dfs, [(0, 6), (6, len(payload))])
        assert lines == [b"one", b"two", b"three-without-newline"]

    def test_file_ending_with_newline(self):
        payload = b"one\ntwo\n"
        dfs = make_dfs(payload)
        lines = list(LineRecordReader().records(dfs, "f", 0, len(payload)))
        assert lines == [b"one", b"two"]

    def test_empty_split(self):
        dfs = make_dfs(self.PAYLOAD)
        assert list(LineRecordReader().records(dfs, "f", 10, 10)) == []

    def test_split_past_eof(self):
        dfs = make_dfs(b"abc\ndef")
        assert list(LineRecordReader().records(dfs, "f", 100, 200)) == []


class TestFixedLengthRecords:
    def test_tiling_never_duplicates(self):
        record = 10
        payload = b"".join(bytes([65 + i]) * record for i in range(8))  # 8 records
        dfs = make_dfs(payload)
        reader = FixedLengthRecordReader(record)
        for cut in range(1, len(payload)):
            recs = collect(reader, dfs, [(0, cut), (cut, len(payload))])
            assert len(recs) == 8, cut
            assert recs == [bytes([65 + i]) * record for i in range(8)], cut

    def test_partial_trailing_record_dropped(self):
        payload = b"A" * 10 + b"B" * 10 + b"C" * 4
        dfs = make_dfs(payload)
        recs = list(FixedLengthRecordReader(10).records(dfs, "f", 0, len(payload)))
        assert recs == [b"A" * 10, b"B" * 10]

    def test_record_spanning_split_boundary(self):
        payload = b"A" * 10 + b"B" * 10
        dfs = make_dfs(payload)
        reader = FixedLengthRecordReader(10)
        first = list(reader.records(dfs, "f", 0, 15))
        second = list(reader.records(dfs, "f", 15, 20))
        assert first == [b"A" * 10, b"B" * 10]  # owns the record starting at 10
        assert second == []

    def test_invalid_record_size(self):
        with pytest.raises(ValueError):
            FixedLengthRecordReader(0)


class TestWholeSplitReader:
    def test_one_record_per_split(self):
        payload = bytes(range(100))
        dfs = make_dfs(payload)
        recs = collect(WholeSplitReader(), dfs, [(0, 40), (40, 100)])
        assert recs == [payload[:40], payload[40:]]

    def test_clamps_to_eof(self):
        payload = b"hello"
        dfs = make_dfs(payload)
        recs = list(WholeSplitReader().records(dfs, "f", 0, 100))
        assert recs == [b"hello"]


class TestReadersOverDegradedFiles:
    def test_lines_readable_after_failures(self):
        payload = b"\n".join(b"line %d" % i for i in range(200))
        dfs = make_dfs(payload)
        ef = dfs.file("f")
        dfs.cluster.fail(ef.server_of(0))
        dfs.cluster.fail(ef.server_of(4))
        lines = list(LineRecordReader().records(dfs, "f", 0, len(payload)))
        assert lines == payload.split(b"\n")

"""Tests for the composable fault model and seeded chaos schedules."""

import pytest

from repro.cluster import Cluster
from repro.cluster.failure import FailureEvent
from repro.codes import ReedSolomonCode
from repro.faults import FaultModel, VirtualClock, generate_schedule, generate_schedules
from repro.faults.model import (
    CLEAN,
    FaultDecision,
    GraySlowdown,
    LatencySpikes,
    SilentCorruption,
    TransientErrors,
)
from repro.faults.schedule import bound_concurrent_crashes
from repro.storage import DistributedFileSystem, TransientReadError
from tests.conftest import payload_bytes


class TestDecisions:
    def test_merge_combines_all_dimensions(self):
        a = FaultDecision(error=True, extra_latency=0.1)
        b = FaultDecision(corrupt=True, extra_latency=0.2)
        m = a.merge(b)
        assert m.error and m.corrupt
        assert m.extra_latency == pytest.approx(0.3)

    def test_clean_is_identity(self):
        d = FaultDecision(error=True)
        assert CLEAN.merge(d) == d
        assert d.merge(CLEAN) == d


class TestComponents:
    def test_server_scope(self):
        comp = TransientErrors(rate=1.0, servers=frozenset({3}))
        assert comp.applies(3, 0.0)
        assert not comp.applies(4, 0.0)

    def test_time_window(self):
        comp = GraySlowdown(extra_latency=0.1, start=2.0, until=5.0)
        assert not comp.applies(0, 1.9)
        assert comp.applies(0, 2.0)
        assert comp.applies(0, 4.9)
        assert not comp.applies(0, 5.0)

    def test_rates_are_probabilities(self):
        model = FaultModel(TransientErrors(rate=0.5), seed=7)
        errors = sum(model.on_read(0, 100).error for _ in range(2000))
        assert 800 < errors < 1200

    def test_gray_always_slow(self):
        model = FaultModel(GraySlowdown(extra_latency=0.25))
        for _ in range(5):
            assert model.on_read(1, 100).extra_latency == pytest.approx(0.25)

    def test_spikes_and_corruption(self):
        model = FaultModel(LatencySpikes(rate=1.0, latency=0.5), SilentCorruption(rate=1.0))
        d = model.on_read(0, 100)
        assert d.corrupt
        assert d.extra_latency == pytest.approx(0.5)


class TestFaultModel:
    def test_seeded_determinism(self):
        def sequence(seed):
            model = FaultModel(TransientErrors(rate=0.3), LatencySpikes(rate=0.3), seed=seed)
            return [model.on_read(i % 4, 100) for i in range(200)]

        assert sequence(11) == sequence(11)
        assert sequence(11) != sequence(12)

    def test_tallies(self):
        model = FaultModel(TransientErrors(rate=1.0), GraySlowdown(extra_latency=0.1))
        for _ in range(3):
            model.on_read(0, 64)
        assert model.decisions == 3
        assert model.injected_errors == 3
        assert model.injected_latency == pytest.approx(0.3)
        desc = model.describe()
        assert desc["components"] == ["TransientErrors", "GraySlowdown"]

    def test_compose_flattens(self):
        a = FaultModel(TransientErrors(rate=0.1))
        b = FaultModel(GraySlowdown(extra_latency=0.1))
        c = FaultModel.compose(a, b, seed=5)
        assert [type(x).__name__ for x in c.components] == ["TransientErrors", "GraySlowdown"]
        assert c.seed == 5


class TestCrashBounding:
    def test_concurrent_crashes_bounded(self):
        events = [
            FailureEvent(time=1.0, server_id=0, recover_at=10.0),
            FailureEvent(time=2.0, server_id=1, recover_at=10.0),
            FailureEvent(time=3.0, server_id=2, recover_at=10.0),
            FailureEvent(time=11.0, server_id=3, recover_at=None),
        ]
        kept = bound_concurrent_crashes(events, 2)
        assert [e.server_id for e in kept] == [0, 1, 3]

    def test_permanent_crash_holds_slot(self):
        events = [
            FailureEvent(time=1.0, server_id=0, recover_at=None),
            FailureEvent(time=50.0, server_id=1, recover_at=60.0),
        ]
        assert [e.server_id for e in bound_concurrent_crashes(events, 1)] == [0]


class TestSchedules:
    def test_schedule_is_pure_function_of_seed(self):
        ids = list(range(8))
        assert generate_schedule(ids, 42) == generate_schedule(ids, 42)
        assert generate_schedule(ids, 42) != generate_schedule(ids, 43)

    def test_generate_many(self):
        schedules = generate_schedules(range(8), 5, base_seed=100)
        assert [s.seed for s in schedules] == [100, 101, 102, 103, 104]
        assert len({s.components for s in schedules}) > 1

    def test_crash_bound_respected(self):
        for sched in generate_schedules(range(10), 10, mtbf=5.0, max_concurrent_crashes=2):
            down: dict[int, float] = {}
            for ev in sorted(sched.crashes, key=lambda e: e.time):
                down = {s: r for s, r in down.items() if r > ev.time}
                down[ev.server_id] = float("inf") if ev.recover_at is None else ev.recover_at
                assert len(down) <= 2

    def test_runner_applies_events_once(self):
        sched = generate_schedule(range(6), 3, mtbf=5.0, horizon=20.0)
        assert sched.crashes  # mtbf far below horizon: crashes exist
        cluster = Cluster.homogeneous(6)
        runner = sched.runner()
        fired = runner.advance_to(cluster, sched.horizon + 100.0)
        assert runner.pending == 0
        assert runner.advance_to(cluster, sched.horizon + 200.0) == []
        # Every fired event actually toggled a server.
        assert len(fired) == len(runner.applied)

    def test_runner_skips_redundant_events(self):
        from repro.faults import ChaosSchedule

        sched = ChaosSchedule(
            seed=0,
            horizon=10.0,
            crashes=(FailureEvent(time=1.0, server_id=0, recover_at=5.0),),
            components=(),
        )
        cluster = Cluster.homogeneous(2)
        runner = sched.runner()
        cluster.fail(0)  # crashed out-of-band before the event fires
        assert runner.advance_to(cluster, 2.0) == []  # crash event skipped
        assert runner.advance_to(cluster, 6.0) == [(5.0, "recover", 0)]
        assert not cluster.server(0).failed


class TestStoreIntegration:
    @pytest.fixture
    def env(self):
        cluster = Cluster.homogeneous(8)
        dfs = DistributedFileSystem(cluster)
        payload = payload_bytes(6_000, seed=9)
        ef = dfs.write_file("f", payload, code=ReedSolomonCode(4, 2))
        return dfs, ef, payload

    def test_transient_errors_surface_at_store(self, env):
        dfs, ef, _ = env
        bad = ef.server_of(0)
        dfs.store.install_faults(
            FaultModel(TransientErrors(rate=1.0, servers=frozenset({bad}))), VirtualClock()
        )
        with pytest.raises(TransientReadError) as exc:
            dfs.store.get(bad, "f", 0)
        assert exc.value.cause == "transient"
        assert exc.value.server == bad
        assert dfs.metrics.total("transient_read_errors") == 1
        # Other servers unaffected.
        dfs.store.get(ef.server_of(1), "f", 1)

    def test_corruption_detected_by_checksum(self, env):
        dfs, ef, _ = env
        bad = ef.server_of(2)
        dfs.store.install_faults(
            FaultModel(SilentCorruption(rate=1.0, servers=frozenset({bad}))), VirtualClock()
        )
        # Unverified read returns silently wrong bytes ...
        dfs.store.get(bad, "f", 2)
        assert dfs.metrics.total("corrupted_returns") >= 1
        # ... verified read turns it into a retryable checksum error.
        with pytest.raises(TransientReadError) as exc:
            dfs.store.timed_get(bad, "f", 2, verify=True)
        assert exc.value.cause == "checksum"
        assert dfs.metrics.total("checksum_failures") >= 1

    def test_corruption_leaves_stored_block_intact(self, env):
        dfs, ef, _ = env
        bad = ef.server_of(0)
        model = FaultModel(SilentCorruption(rate=1.0, servers=frozenset({bad})))
        dfs.store.install_faults(model, VirtualClock())
        dfs.store.get(bad, "f", 0)  # corrupted in flight
        dfs.store.install_faults(None)
        assert dfs.store.verify(bad, "f", 0)  # at-rest copy untouched

    def test_gray_slowdown_inflates_latency(self, env):
        dfs, ef, _ = env
        gray = ef.server_of(3)
        dfs.store.install_faults(
            FaultModel(GraySlowdown(extra_latency=0.2, servers=frozenset({gray}))), VirtualClock()
        )
        _, slow = dfs.store.timed_get(gray, "f", 3)
        _, fast = dfs.store.timed_get(ef.server_of(1), "f", 1)
        assert slow == pytest.approx(fast + 0.2)

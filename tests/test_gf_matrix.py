"""Tests for GF dense linear algebra."""

import numpy as np
import pytest

from repro.gf import (
    GFError,
    SingularMatrixError,
    cauchy,
    expand_by_identity,
    express_rows,
    identity,
    inverse,
    is_invertible,
    matmul,
    random_symbols,
    rank,
    rows_in_rowspace,
    select_independent_rows,
    solve,
    solve_consistent,
    take_rows,
    vandermonde,
)


def random_invertible(gf, n, seed=0):
    for s in range(seed, seed + 50):
        m = random_symbols(gf, (n, n), seed=s)
        if is_invertible(gf, m):
            return m
    raise AssertionError("could not sample an invertible matrix")


class TestMatmul:
    def test_identity_neutral(self, gf):
        a = random_symbols(gf, (4, 4), seed=1)
        assert np.array_equal(matmul(gf, identity(gf, 4), a), a)
        assert np.array_equal(matmul(gf, a, identity(gf, 4)), a)

    def test_associative(self, gf):
        a = random_symbols(gf, (3, 4), seed=2)
        b = random_symbols(gf, (4, 5), seed=3)
        c = random_symbols(gf, (5, 2), seed=4)
        assert np.array_equal(matmul(gf, matmul(gf, a, b), c), matmul(gf, a, matmul(gf, b, c)))

    def test_shape_mismatch(self, gf):
        with pytest.raises(GFError):
            matmul(gf, np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))

    def test_wide_field(self, gf16):
        a = random_symbols(gf16, (3, 3), seed=5)
        inv = inverse(gf16, random_invertible(gf16, 3, seed=6))
        assert matmul(gf16, a, inv).shape == (3, 3)


class TestInverse:
    def test_roundtrip(self, gf):
        m = random_invertible(gf, 6, seed=7)
        inv = inverse(gf, m)
        assert np.array_equal(matmul(gf, m, inv), identity(gf, 6))
        assert np.array_equal(matmul(gf, inv, m), identity(gf, 6))

    def test_singular_raises(self, gf):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            inverse(gf, m)

    def test_non_square_raises(self, gf):
        with pytest.raises(GFError):
            inverse(gf, np.zeros((2, 3), dtype=np.uint8))

    def test_identity_inverse(self, gf):
        assert np.array_equal(inverse(gf, identity(gf, 5)), identity(gf, 5))


class TestRank:
    def test_full_rank(self, gf):
        assert rank(gf, random_invertible(gf, 5, seed=8)) == 5

    def test_duplicated_rows(self, gf):
        m = random_symbols(gf, (3, 5), seed=9)
        doubled = np.concatenate([m, m], axis=0)
        assert rank(gf, doubled) == rank(gf, m)

    def test_zero_matrix(self, gf):
        assert rank(gf, np.zeros((3, 3), dtype=np.uint8)) == 0

    def test_empty(self, gf):
        assert rank(gf, np.zeros((0, 4), dtype=np.uint8)) == 0


class TestSolve:
    def test_solve_vector(self, gf):
        a = random_invertible(gf, 4, seed=10)
        x = random_symbols(gf, 4, seed=11)
        b = matmul(gf, a, x[:, None])[:, 0]
        got = solve(gf, a, b)
        assert np.array_equal(got, x)

    def test_solve_matrix_rhs(self, gf):
        a = random_invertible(gf, 4, seed=12)
        x = random_symbols(gf, (4, 3), seed=13)
        b = matmul(gf, a, x)
        assert np.array_equal(solve(gf, a, b), x)


class TestStructuredMatrices:
    def test_vandermonde_any_k_rows_invertible(self, gf):
        v = vandermonde(gf, 7, 4)
        from itertools import combinations

        for rows in combinations(range(7), 4):
            assert is_invertible(gf, v[list(rows)]), rows

    def test_vandermonde_bad_points(self, gf):
        with pytest.raises(GFError):
            vandermonde(gf, 3, 2, points=[1, 1, 2])

    def test_cauchy_every_submatrix_invertible(self, gf):
        c = cauchy(gf, [10, 11, 12], [1, 2, 3, 4])
        from itertools import combinations

        for size in (1, 2, 3):
            for rs in combinations(range(3), size):
                for cs in combinations(range(4), size):
                    assert is_invertible(gf, c[np.ix_(rs, cs)])

    def test_cauchy_overlapping_points_rejected(self, gf):
        with pytest.raises(GFError):
            cauchy(gf, [1, 2], [2, 3])

    def test_expand_by_identity_structure(self, gf):
        a = np.array([[1, 2], [0, 3]], dtype=np.uint8)
        e = expand_by_identity(gf, a, 3)
        assert e.shape == (6, 6)
        assert np.array_equal(e[:3, :3], 1 * np.eye(3, dtype=np.uint8))
        assert np.array_equal(e[:3, 3:], 2 * np.eye(3, dtype=np.uint8))
        assert not e[3:, :3].any()

    def test_expand_preserves_invertibility(self, gf):
        a = random_invertible(gf, 3, seed=14)
        e = expand_by_identity(gf, a, 4)
        assert is_invertible(gf, e)

    def test_take_rows_bounds(self, gf):
        m = identity(gf, 3)
        with pytest.raises(GFError):
            take_rows(m, [5])


class TestRowSelection:
    def test_select_independent_prefers_early_rows(self, gf):
        m = np.concatenate([identity(gf, 3), identity(gf, 3)], axis=0)
        assert select_independent_rows(gf, m, 3) == [0, 1, 2]

    def test_select_skips_dependent(self, gf):
        base = random_symbols(gf, (2, 4), seed=15)
        dep = (base[0] ^ base[1])[None, :]
        extra = random_symbols(gf, (2, 4), seed=16)
        m = np.concatenate([base, dep, extra], axis=0)
        picked = select_independent_rows(gf, m, 4)
        assert 2 not in picked  # the dependent row must be skipped

    def test_select_insufficient_raises(self, gf):
        m = np.zeros((3, 3), dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            select_independent_rows(gf, m, 1)


class TestConsistentSolve:
    def test_underdetermined_consistent(self, gf):
        a = np.array([[1, 0, 1], [0, 1, 0]], dtype=np.uint8)
        x_true = np.array([5, 7, 0], dtype=np.uint8)
        b = matmul(gf, a, x_true[:, None])[:, 0]
        x = solve_consistent(gf, a, b)
        assert np.array_equal(matmul(gf, a, x[:, None])[:, 0], b)

    def test_inconsistent_raises(self, gf):
        a = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        b = np.array([1, 2], dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            solve_consistent(gf, a, b)

    def test_express_rows_roundtrip(self, gf):
        helpers = random_symbols(gf, (5, 8), seed=17)
        mix = random_symbols(gf, (3, 5), seed=18)
        targets = matmul(gf, mix, helpers)
        c = express_rows(gf, targets, helpers)
        assert np.array_equal(matmul(gf, c, helpers), targets)

    def test_express_rows_outside_rowspace(self, gf):
        helpers = np.array([[1, 0, 0]], dtype=np.uint8)
        targets = np.array([[0, 1, 0]], dtype=np.uint8)
        with pytest.raises(SingularMatrixError):
            express_rows(gf, targets, helpers)


class TestRowspace:
    def test_rows_in_rowspace_true(self, gf):
        basis = random_symbols(gf, (3, 6), seed=19)
        mix = random_symbols(gf, (2, 3), seed=20)
        cands = matmul(gf, mix, basis)
        assert rows_in_rowspace(gf, cands, basis)

    def test_rows_in_rowspace_false(self, gf):
        basis = np.array([[1, 0, 0], [0, 1, 0]], dtype=np.uint8)
        cands = np.array([[0, 0, 1]], dtype=np.uint8)
        assert not rows_in_rowspace(gf, cands, basis)

"""Tests for the block store, filesystem and metrics."""

import numpy as np
import pytest

from repro.cluster import Cluster, RoundRobinPlacement
from repro.codes import PyramidCode, ReedSolomonCode
from repro.core import GalloperCode
from repro.storage import (
    BlockUnavailableError,
    DistributedFileSystem,
    FileSystemError,
    MetricsRegistry,
)
from tests.conftest import payload_bytes


class TestMetrics:
    def test_counters(self):
        m = MetricsRegistry()
        m.add("disk_bytes_read", 100, server_id=1)
        m.add("disk_bytes_read", 50, server_id=2)
        assert m.total("disk_bytes_read") == 150
        assert m.by_server("disk_bytes_read") == {1: 100, 2: 50}

    def test_unknown_counter_is_zero(self):
        assert MetricsRegistry().total("nope") == 0

    def test_reset_and_snapshot(self):
        m = MetricsRegistry()
        m.add("x", 3)
        assert m.snapshot() == {"x": 3}
        m.reset()
        assert m.snapshot() == {}


class TestBlockStore:
    @pytest.fixture
    def setup(self):
        cluster = Cluster.homogeneous(4)
        dfs = DistributedFileSystem(cluster)
        return cluster, dfs.store

    def test_put_get(self, setup):
        cluster, store = setup
        block = np.arange(12, dtype=np.uint8).reshape(3, 4)
        store.put(0, "f", 0, block)
        got = store.get(0, "f", 0)
        assert np.array_equal(got, block)

    def test_failed_server_unreadable(self, setup):
        cluster, store = setup
        store.put(1, "f", 0, np.zeros((2, 2), dtype=np.uint8))
        cluster.fail(1)
        with pytest.raises(BlockUnavailableError):
            store.get(1, "f", 0)
        with pytest.raises(BlockUnavailableError):
            store.put(1, "f", 1, np.zeros((2, 2), dtype=np.uint8))

    def test_missing_block(self, setup):
        _, store = setup
        with pytest.raises(BlockUnavailableError):
            store.get(0, "ghost", 0)

    def test_read_rows_range_checked(self, setup):
        _, store = setup
        store.put(0, "f", 0, np.zeros((3, 4), dtype=np.uint8))
        from repro.storage import StorageError

        with pytest.raises(StorageError):
            store.read_rows(0, "f", 0, 2, 5)

    def test_io_accounting(self, setup):
        _, store = setup
        block = np.zeros((4, 10), dtype=np.uint8)
        store.put(2, "f", 0, block)
        store.get(2, "f", 0)
        assert store.metrics.total("disk_bytes_written") == 40
        assert store.metrics.total("disk_bytes_read") == 40
        assert store.metrics.by_server("blocks_read") == {2: 1}

    def test_drop_server(self, setup):
        _, store = setup
        store.put(3, "f", 0, np.zeros((1, 1), dtype=np.uint8))
        store.put(3, "f", 1, np.zeros((1, 1), dtype=np.uint8))
        assert store.drop_server(3) == 2
        assert store.blocks_on(3) == []

    def test_used_bytes(self, setup):
        _, store = setup
        store.put(0, "a", 0, np.zeros((2, 8), dtype=np.uint8))
        assert store.used_bytes(0) == 16


class TestFileSystem:
    @pytest.fixture
    def dfs(self):
        return DistributedFileSystem(Cluster.homogeneous(10))

    def test_write_read_roundtrip(self, dfs):
        payload = payload_bytes(10_000, seed=1)
        dfs.write_file("f", payload, code=GalloperCode(4, 2, 1))
        assert dfs.read_file("f") == payload

    def test_padding_transparent(self, dfs):
        # 1009 is prime: guaranteed padding.
        payload = payload_bytes(1009, seed=2)
        ef = dfs.write_file("f", payload, code=ReedSolomonCode(4, 2))
        assert ef.original_size == 1009
        assert ef.padded_size % 4 == 0
        assert dfs.read_file("f") == payload

    def test_duplicate_name_rejected(self, dfs):
        dfs.write_file("f", b"x" * 100, code=ReedSolomonCode(4, 2))
        with pytest.raises(FileSystemError):
            dfs.write_file("f", b"y" * 100, code=ReedSolomonCode(4, 2))

    def test_exactly_one_code_argument(self, dfs):
        with pytest.raises(FileSystemError):
            dfs.write_file("f", b"x")
        with pytest.raises(FileSystemError):
            dfs.write_file(
                "g",
                b"x",
                code=ReedSolomonCode(4, 2),
                code_factory=lambda p: ReedSolomonCode(4, 2),
            )

    def test_blocks_on_distinct_servers(self, dfs):
        ef = dfs.write_file("f", b"z" * 4000, code=PyramidCode(4, 2, 1))
        assert len(set(ef.placement.values())) == 7

    def test_read_bytes_extent(self, dfs):
        payload = payload_bytes(9000, seed=3)
        dfs.write_file("f", payload, code=GalloperCode(4, 2, 1))
        assert dfs.read_bytes("f", 123, 456) == payload[123 : 123 + 456]

    def test_read_bytes_past_eof_truncates(self, dfs):
        payload = payload_bytes(1000, seed=4)
        dfs.write_file("f", payload, code=ReedSolomonCode(4, 2))
        assert dfs.read_bytes("f", 900, 500) == payload[900:]
        assert dfs.read_bytes("f", 5000, 10) == b""

    def test_degraded_read_single_failure(self, dfs):
        payload = payload_bytes(7000, seed=5)
        ef = dfs.write_file("f", payload, code=GalloperCode(4, 2, 1))
        dfs.cluster.fail(ef.server_of(2))
        assert dfs.read_file("f") == payload
        assert dfs.metrics.total("degraded_reads") >= 1

    def test_degraded_read_double_failure(self, dfs):
        payload = payload_bytes(7000, seed=6)
        ef = dfs.write_file("f", payload, code=PyramidCode(4, 2, 1))
        dfs.cluster.fail(ef.server_of(0))
        dfs.cluster.fail(ef.server_of(6))
        assert dfs.read_file("f") == payload

    def test_too_many_failures_raise(self, dfs):
        payload = payload_bytes(3000, seed=7)
        ef = dfs.write_file("f", payload, code=ReedSolomonCode(4, 2))
        for b in (0, 1, 2):
            dfs.cluster.fail(ef.server_of(b))
        from repro.codes import DecodingError

        with pytest.raises(DecodingError):
            dfs.read_file("f")

    def test_code_factory_receives_placed_performance(self):
        cluster = Cluster.heterogeneous([1, 1, 1, 1, 0.4, 0.4, 0.4])
        dfs = DistributedFileSystem(cluster)
        seen = []

        def factory(perf):
            seen.append(perf)
            return GalloperCode(4, 2, 1, performances=perf)

        dfs.write_file("f", payload_bytes(7000, seed=8), code_factory=factory)
        assert seen[-1] == [1, 1, 1, 1, 0.4, 0.4, 0.4]

    def test_delete_file(self, dfs):
        ef = dfs.write_file("f", b"q" * 1000, code=ReedSolomonCode(4, 2))
        server0 = ef.server_of(0)
        dfs.delete_file("f")
        assert dfs.list_files() == []
        assert not dfs.store.holds(server0, "f", 0)

    def test_virtual_file(self, dfs):
        ef = dfs.write_virtual_file("v", 7 * 450 * (1 << 20) // 7 * 4, code=GalloperCode(4, 2, 1))
        assert ef.tags["virtual"]
        assert ef.block_size > 0
        # No payload was stored.
        assert all(not dfs.store.holds(s, "v", b) for b, s in ef.placement.items())

    def test_stripe_holder_lookup(self, dfs):
        ef = dfs.write_file("f", payload_bytes(2800, seed=9), code=GalloperCode(4, 2, 1))
        holder = ef.stripe_holder(0)
        assert holder is not None
        block, row = holder
        assert row == 0 and block == 0

    def test_read_stripes_range_checked(self, dfs):
        dfs.write_file("f", payload_bytes(2800, seed=10), code=GalloperCode(4, 2, 1))
        with pytest.raises(FileSystemError):
            dfs.read_stripes("f", 0, 999)

    def test_missing_file(self, dfs):
        with pytest.raises(FileSystemError):
            dfs.read_file("ghost")

"""Property-based tests for the Galloper construction.

Hypothesis drives random parameters, weights and erasure patterns through
the construction invariants: systematic embedding, weight/stripe
consistency, failure tolerance, and round-trip encode/decode.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import LRCStructure, PyramidCode
from repro.core import GalloperCode
from repro.gf import random_symbols


@st.composite
def l0_weight_vectors(draw):
    """Random feasible weight vectors for a (k, 0, g) code."""
    k = draw(st.integers(min_value=2, max_value=5))
    g = draw(st.integers(min_value=1, max_value=2))
    n = k + g
    denom = draw(st.sampled_from([4, 5, 6, 7, 8]))
    # Draw integer stripe counts q_i <= denom with sum k*denom.
    target = k * denom
    counts = []
    remaining = target
    for i in range(n - 1):
        lo = max(0, remaining - (n - 1 - i) * denom)
        hi = min(denom, remaining)
        c = draw(st.integers(min_value=lo, max_value=hi))
        counts.append(c)
        remaining -= c
    if not 0 <= remaining <= denom:
        # Infeasible residue; fall back to uniform.
        counts = [target // n] * (n - 1)
        remaining = target - sum(counts)
    counts.append(remaining)
    return k, g, [Fraction(c, denom) for c in counts]


class TestSpecialCaseProperties:
    @settings(max_examples=25, deadline=None)
    @given(l0_weight_vectors())
    def test_construction_invariants(self, params):
        k, g, weights = params
        code = GalloperCode(k, 0, g, weights=weights)
        # 1. systematic on advertised stripes
        assert code.verify_systematic()
        # 2. stripe counts match weights
        for info, w in zip(code.block_infos, weights):
            assert info.data_stripes == int(w * code.N)
        # 3. file extents tile the file exactly once
        seen = sorted(fs for info in code.block_infos for fs in info.file_stripes)
        assert seen == list(range(code.data_stripe_total))

    @settings(max_examples=15, deadline=None)
    @given(l0_weight_vectors(), st.integers(min_value=0, max_value=10_000))
    def test_any_k_blocks_decode(self, params, seed):
        k, g, weights = params
        code = GalloperCode(k, 0, g, weights=weights)
        data = random_symbols(code.gf, (code.data_stripe_total, 3), seed=seed)
        blocks = code.encode(data)
        rng = np.random.default_rng(seed)
        ids = sorted(rng.choice(code.n, size=k, replace=False).tolist())
        got = code.decode({b: blocks[b] for b in ids})
        assert np.array_equal(got, data)


@st.composite
def general_params(draw):
    k = draw(st.sampled_from([4, 6]))
    l = draw(st.sampled_from([2] if k == 4 else [2, 3]))
    g = draw(st.integers(min_value=1, max_value=2))
    # Random performance vector; the LP makes any of them feasible.
    n = k + l + g
    perf = [draw(st.sampled_from([0.25, 0.5, 1.0, 2.0])) for _ in range(n)]
    return k, l, g, perf


class TestGeneralCaseProperties:
    @settings(max_examples=15, deadline=None)
    @given(general_params())
    def test_lp_weights_always_constructible(self, params):
        k, l, g, perf = params
        code = GalloperCode(k, l, g, performances=perf)
        assert code.verify_systematic()
        assert sum(code.weights) == k
        assert all(0 <= w <= 1 for w in code.weights)

    @settings(max_examples=10, deadline=None)
    @given(general_params(), st.integers(min_value=0, max_value=10_000))
    def test_tolerates_random_g_plus_1_erasures(self, params, seed):
        k, l, g, perf = params
        code = GalloperCode(k, l, g, performances=perf)
        data = random_symbols(code.gf, (code.data_stripe_total, 2), seed=seed)
        blocks = code.encode(data)
        rng = np.random.default_rng(seed)
        lost = set(rng.choice(code.n, size=g + 1, replace=False).tolist())
        ids = [b for b in range(code.n) if b not in lost]
        got = code.decode({b: blocks[b] for b in ids})
        assert np.array_equal(got, data)

    @settings(max_examples=10, deadline=None)
    @given(general_params())
    def test_within_tolerance_decodability_equals_pyramid(self, params):
        """Up to g+1 erasures both codes decode (beyond that, patterns are
        allowed to differ — see test_equivalence)."""
        k, l, g, perf = params
        galloper = GalloperCode(k, l, g, performances=perf)
        pyramid = PyramidCode(k, l, g)
        rng = np.random.default_rng(int(sum(p * 4 for p in perf)))
        n = galloper.n
        for _ in range(8):
            failures = int(rng.integers(1, g + 2))
            lost = set(rng.choice(n, size=failures, replace=False).tolist())
            ids = [b for b in range(n) if b not in lost]
            assert galloper.can_decode(ids)
            assert pyramid.can_decode(ids)

"""Property-based tests for in-place parity updates."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codes import PyramidCode, ReedSolomonCode
from repro.codes.update import apply_update, update_plan
from repro.core import GalloperCode
from repro.gf import random_symbols

CODES = {
    "rs": lambda: ReedSolomonCode(4, 2),
    "pyramid": lambda: PyramidCode(4, 2, 1),
    "galloper": lambda: GalloperCode(4, 2, 1),
}

settings_kwargs = dict(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestUpdateProperties:
    @settings(**settings_kwargs)
    @given(
        code_name=st.sampled_from(sorted(CODES)),
        updates=st.lists(
            st.tuples(st.integers(min_value=0, max_value=27), st.integers(min_value=0, max_value=10_000)),
            min_size=1,
            max_size=8,
        ),
    )
    def test_random_update_sequences_match_reencode(self, code_name, updates):
        code = CODES[code_name]()
        total = code.data_stripe_total
        data = random_symbols(code.gf, (total, 6), seed=1)
        blocks = code.encode(data)
        for stripe_raw, seed in updates:
            stripe = stripe_raw % total
            new_value = random_symbols(code.gf, 6, seed=seed)
            apply_update(code, blocks, stripe, new_value)
            data[stripe] = new_value
        assert np.array_equal(blocks, code.encode(data))

    @settings(**settings_kwargs)
    @given(
        code_name=st.sampled_from(sorted(CODES)),
        stripe_raw=st.integers(min_value=0, max_value=1000),
    )
    def test_plan_includes_verbatim_copy_with_unit_coeff(self, code_name, stripe_raw):
        code = CODES[code_name]()
        stripe = stripe_raw % code.data_stripe_total
        plan = update_plan(code, stripe)
        # The stripe's own verbatim copy is always in the plan at coeff 1.
        unit_targets = [(b, r) for b, r, c in plan.touched if c == 1]
        holders = [
            (info.index, row)
            for info in code.block_infos
            for row, fs in enumerate(info.file_stripes)
            if fs == stripe
        ]
        assert holders and all(h in unit_targets for h in holders)

    @settings(**settings_kwargs)
    @given(code_name=st.sampled_from(sorted(CODES)), stripe_raw=st.integers(min_value=0, max_value=1000))
    def test_noop_update_changes_nothing(self, code_name, stripe_raw):
        code = CODES[code_name]()
        stripe = stripe_raw % code.data_stripe_total
        data = random_symbols(code.gf, (code.data_stripe_total, 4), seed=2)
        blocks = code.encode(data)
        before = blocks.copy()
        apply_update(code, blocks, stripe, data[stripe])
        assert np.array_equal(blocks, before)
